//! Epoch/RCU live mutation over Morton-partitioned kd-tree shards.
//!
//! Every index the service knew before this module was immutable after
//! `register_index`: any data change meant an offline rebuild and a fresh
//! registration. [`MutableIndex`] closes that gap with an epoch scheme:
//!
//! * **Writers** ([`MutableIndex::mutate`]) submit [`Mutation::Insert`] /
//!   [`Mutation::Delete`] deltas. Each delta lands in the buffer of its
//!   *home shard* (the shard whose bounding box is nearest the inserted
//!   point, or the shard owning the deleted id) of a freshly published
//!   immutable [`EpochState`] — the state pointer swaps atomically under
//!   a short lock, so a mutation batch is visible to readers the moment
//!   `mutate` returns.
//! * **Readers** ([`TreeIndex::run_batch`]) pin the current epoch by
//!   cloning the state's `Arc`. Queries in flight keep traversing the
//!   shard set they pinned; no reader ever observes a torn shard set.
//! * A **background merge thread** folds pending deltas into the shards:
//!   only *touched* shards (those with a non-empty delta buffer) rebuild;
//!   a touched shard that grew past twice the ideal Morton partition size
//!   re-splits into equal Morton chunks during the merge. The new shard
//!   vector swaps in atomically and the epoch advances.
//!
//! **Delta-window answer rule.** Answers are exact at every instant, not
//! just at epoch boundaries. While deltas are pending, the tree sweep is
//! combined with a brute-force pass over the (small) delta set:
//!
//! * *Insert* — every live pending insert is offered as a candidate next
//!   to the tree results (NN keeps its nearest-distinct-position rule:
//!   zero-distance inserts are not NN answers; kNN and PC admit them).
//! * *Delete* of a tree point — tree results are filtered by the deleted
//!   id set. kNN runs the tree at `k + |pending tree deletes|` so the
//!   top-k always survives the filter; NN falls back to a widening kNN
//!   probe only when its answer was deleted; PC subtracts the deleted
//!   points inside the radius (their coordinates ride the delta entry).
//! * *Delete* of a pending insert — masks the insert; once merged the
//!   pair cancels to the identity multiset.
//!
//! Ids are stable: an insert is assigned a fresh id that never changes
//! or gets reused, so a result id always names the same point — the
//! invariant the differential oracle and the churn stress tests lean on.

use crate::index::{
    distinct_ops, BatchOutcome, FusedLane, FusedLaneResult, FusedOutcome, KdIndex, TreeIndex,
};
use crate::policy::ExecPolicy;
use crate::query::{OpKey, QueryResult};
use crate::shard::{Acc, FusedAcc, StatAgg, SubRun};
use gts_apps::kbest::KBest;
use gts_points::sort::morton_order;
use gts_trees::{Aabb, PointN, SplitPolicy};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One requested change to a [`MutableIndex`], dimension-erased the same
/// way [`crate::Query`] is so the service and the wire protocol can carry
/// it without knowing `D`.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Add a point; the index assigns it a fresh stable id.
    Insert {
        /// Position, `dim()` coordinates.
        pos: Vec<f32>,
    },
    /// Remove the point with this id (an initial point's dataset index or
    /// an id a previous insert was assigned).
    Delete {
        /// The stable id to remove.
        id: u32,
    },
}

/// Acknowledgement of one applied mutation batch.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationAck {
    /// Mutations applied (inserts + deletes of live ids).
    pub accepted: u64,
    /// Deletes naming ids that were not live (already deleted or never
    /// assigned) — skipped deterministically, never partially applied.
    pub rejected: u64,
    /// Ids assigned to the batch's inserts, in submission order.
    pub assigned: Vec<u32>,
    /// Merged epoch at apply time (deltas are pending *on top* of it).
    pub epoch: u64,
    /// Delta entries pending after this batch (the delta depth).
    pub pending: u64,
}

/// Why a mutation batch was refused outright (nothing was applied).
#[derive(Debug, Clone, PartialEq)]
pub enum MutateError {
    /// The index does not support mutation (every static index).
    Immutable,
    /// The index was quiesced (service close/shutdown); mutations after
    /// the close are rejected deterministically, never half-applied.
    Closed,
    /// An insert position's length does not match the index dimension.
    DimMismatch {
        /// The index dimension.
        expected: usize,
        /// The submitted position length.
        got: usize,
    },
    /// An insert position contained a non-finite coordinate.
    BadPosition,
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::Immutable => write!(f, "index does not accept mutations"),
            MutateError::Closed => write!(f, "index is quiesced"),
            MutateError::DimMismatch { expected, got } => {
                write!(f, "insert is {got}-d, index is {expected}-d")
            }
            MutateError::BadPosition => write!(f, "non-finite insert position"),
        }
    }
}

impl std::error::Error for MutateError {}

/// Point-in-time counters of a mutable index's epoch machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// Current merged epoch (advances once per background merge).
    pub epoch: u64,
    /// Delta entries pending (not yet merged).
    pub pending: u64,
    /// Merges performed so far.
    pub merges: u64,
    /// Mutations accepted so far.
    pub mutations: u64,
    /// Live points (tree points − pending deletes + pending inserts).
    pub live: u64,
    /// Current merged shard count.
    pub shards: u64,
}

/// Epoch lifecycle notifications a runtime (the service) can subscribe to
/// via [`TreeIndex::attach_epoch_observer`] — how mutation and merge
/// activity reaches the metrics registry and the trace ring without the
/// index depending on either.
#[derive(Debug, Clone)]
pub enum EpochEvent {
    /// A mutation batch was applied and published.
    Mutation {
        /// Mutations applied.
        accepted: u64,
        /// Deletes skipped (id not live).
        rejected: u64,
        /// Delta depth after the batch.
        pending: u64,
    },
    /// A background (or forced) merge landed and the epoch advanced.
    Merge {
        /// The epoch the merge advanced *to*.
        epoch: u64,
        /// Shards rebuilt (including re-split chunks).
        rebuilt: u32,
        /// Delta entries folded into the new shards.
        flushed: u64,
        /// Delta entries that arrived during the merge and stay pending.
        pending_after: u64,
        /// Wall time of the merge.
        dur: Duration,
    },
}

/// Observer callback for [`EpochEvent`]s; see
/// [`TreeIndex::attach_epoch_observer`].
pub type EpochObserverFn = Arc<dyn Fn(&EpochEvent) + Send + Sync>;

/// `(sequence, id, point)` of one pending insert.
#[derive(Clone)]
struct DeltaInsert<const D: usize> {
    seq: u64,
    id: u32,
    pt: PointN<D>,
}

/// One pending delete. `in_tree` records whether the id lived in the
/// merged shards (its coordinates then matter for PC subtraction) or in a
/// pending insert (the pair cancels at merge time).
#[derive(Clone)]
struct DeltaDelete<const D: usize> {
    seq: u64,
    id: u32,
    pt: PointN<D>,
    in_tree: bool,
}

/// Per-shard delta buffer.
#[derive(Clone)]
struct ShardDelta<const D: usize> {
    inserts: Vec<DeltaInsert<D>>,
    deletes: Vec<DeltaDelete<D>>,
}

impl<const D: usize> Default for ShardDelta<D> {
    fn default() -> Self {
        ShardDelta {
            inserts: Vec::new(),
            deletes: Vec::new(),
        }
    }
}

impl<const D: usize> ShardDelta<D> {
    fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// One merged shard: a kd-tree over its points plus the id table mapping
/// tree-local result indices back to stable global ids.
struct EpochShard<const D: usize> {
    index: KdIndex<D>,
    /// `ids[i]` = stable global id of the shard's i-th build point.
    ids: Vec<u32>,
    /// The build points, kept for merge rebuilds and delete lookups.
    pts: Vec<PointN<D>>,
    bbox: Aabb<D>,
}

impl<const D: usize> EpochShard<D> {
    fn build(pts: Vec<PointN<D>>, ids: Vec<u32>, leaf_size: usize, split: SplitPolicy) -> Self {
        debug_assert!(!pts.is_empty());
        EpochShard {
            index: KdIndex::build("epoch-shard", &pts, leaf_size, split),
            bbox: Aabb::of_points(&pts),
            ids,
            pts,
        }
    }
}

/// One immutable epoch snapshot: the merged shard set plus the pending
/// delta buffers layered on top. Readers pin it by cloning the `Arc`.
struct EpochState<const D: usize> {
    /// Merged epoch; advances only when a merge swaps new shards in.
    epoch: u64,
    /// Mutation sequence high-water mark covered by `deltas`.
    seq: u64,
    shards: Vec<Arc<EpochShard<D>>>,
    /// Parallel to `shards` (one slot even when the tree is empty).
    deltas: Vec<ShardDelta<D>>,
    /// Live multiset size (tree − pending deletes + pending inserts).
    n_live: usize,
}

impl<const D: usize> EpochState<D> {
    fn pending(&self) -> u64 {
        self.deltas.iter().map(|d| d.len() as u64).sum()
    }

    fn tree_points(&self) -> usize {
        self.shards.iter().map(|s| s.ids.len()).sum()
    }
}

/// Where a live id currently resides — the writer-side routing table.
#[derive(Clone, Copy)]
enum Owner {
    /// Merged into shard `.0`.
    Tree(usize),
    /// Pending in delta slot `.0`.
    Pending(usize),
}

struct WriterState {
    next_id: u32,
    /// Live ids only: inserts add, deletes remove, merges rebuild.
    owner: HashMap<u32, Owner>,
    closed: bool,
    seq: u64,
}

struct MergeCtl {
    wake: bool,
    shutdown: bool,
}

struct Core<const D: usize> {
    name: String,
    target_shards: usize,
    leaf_size: usize,
    split: SplitPolicy,
    merge_debounce: Duration,
    /// The swappable snapshot pointer. Held only to clone or replace.
    state: Mutex<Arc<EpochState<D>>>,
    /// Serializes writers (mutations and the merge swap). Lock order:
    /// `writer` before `state`; readers take `state` alone.
    writer: Mutex<WriterState>,
    /// Serializes merges (the background thread vs `merge_now`).
    merge_lock: Mutex<()>,
    ctl: Mutex<MergeCtl>,
    cv: Condvar,
    epoch: AtomicU64,
    merges: AtomicU64,
    mutations: AtomicU64,
    observer: Mutex<Option<EpochObserverFn>>,
}

/// Builder for a [`MutableIndex`]; the defaults mirror
/// [`crate::ShardedIndexBuilder`].
pub struct MutableIndexBuilder {
    name: String,
    shards: usize,
    leaf_size: usize,
    split: SplitPolicy,
    auto_merge: bool,
    merge_debounce: Duration,
}

impl MutableIndexBuilder {
    /// Start a builder for an index named `name` targeting `shards`
    /// Morton shards (the re-split policy keeps shard sizes near
    /// `live / shards`; the actual count tracks the data).
    pub fn new(name: impl Into<String>, shards: usize) -> Self {
        MutableIndexBuilder {
            name: name.into(),
            shards: shards.max(1),
            leaf_size: 8,
            split: SplitPolicy::MedianCycle,
            auto_merge: true,
            merge_debounce: Duration::ZERO,
        }
    }

    /// Per-shard kd-tree leaf bucket size (default 8).
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.leaf_size = leaf_size;
        self
    }

    /// Per-shard split policy (default [`SplitPolicy::MedianCycle`]).
    pub fn split_policy(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }

    /// Spawn the background merge thread (default). With `false`, deltas
    /// stay pending until [`MutableIndex::merge_now`] or
    /// [`MutableIndex::quiesce`] — the deterministic mode the
    /// differential oracle uses to pin the delta-window behavior.
    pub fn auto_merge(mut self, auto: bool) -> Self {
        self.auto_merge = auto;
        self
    }

    /// Delay between a mutation landing and the background merge picking
    /// it up (default zero). A large debounce keeps deltas pending — the
    /// shutdown-ordering tests use it to prove `close` flushes them.
    pub fn merge_debounce(mut self, debounce: Duration) -> Self {
        self.merge_debounce = debounce;
        self
    }

    /// Build the index over `points` (which may be empty — the first
    /// inserts then seed the tree). Initial points keep their dataset
    /// index as their stable id.
    pub fn build<const D: usize>(self, points: &[PointN<D>]) -> MutableIndex<D> {
        MutableIndex::build_with(
            self.name,
            points,
            self.shards,
            self.leaf_size,
            self.split,
            self.auto_merge,
            self.merge_debounce,
        )
    }
}

/// A live-mutable [`TreeIndex`]: Morton-partitioned kd-tree shards with
/// epoch/RCU insert/delete. See the module docs for the scheme.
pub struct MutableIndex<const D: usize> {
    core: Arc<Core<D>>,
    merge_thread: Mutex<Option<JoinHandle<()>>>,
}

impl<const D: usize> MutableIndex<D> {
    /// Build with defaults: background merging on, zero debounce.
    pub fn build(
        name: impl Into<String>,
        points: &[PointN<D>],
        shards: usize,
        leaf_size: usize,
        split: SplitPolicy,
    ) -> Self {
        MutableIndexBuilder::new(name, shards)
            .leaf_size(leaf_size)
            .split_policy(split)
            .build(points)
    }

    fn build_with(
        name: String,
        points: &[PointN<D>],
        target_shards: usize,
        leaf_size: usize,
        split: SplitPolicy,
        auto_merge: bool,
        merge_debounce: Duration,
    ) -> Self {
        let mut shards: Vec<Arc<EpochShard<D>>> = Vec::new();
        let mut owner = HashMap::new();
        if !points.is_empty() {
            let n = points.len();
            let order = morton_order(points);
            for s in 0..target_shards {
                let (lo, hi) = (s * n / target_shards, (s + 1) * n / target_shards);
                if lo == hi {
                    continue;
                }
                let ids: Vec<u32> = order[lo..hi].to_vec();
                let pts: Vec<PointN<D>> = ids.iter().map(|&i| points[i as usize]).collect();
                for &id in &ids {
                    owner.insert(id, Owner::Tree(shards.len()));
                }
                shards.push(Arc::new(EpochShard::build(pts, ids, leaf_size, split)));
            }
        }
        let n_live = points.len();
        let deltas = vec![ShardDelta::default(); shards.len().max(1)];
        let core = Arc::new(Core {
            name,
            target_shards,
            leaf_size,
            split,
            merge_debounce,
            state: Mutex::new(Arc::new(EpochState {
                epoch: 0,
                seq: 0,
                shards,
                deltas,
                n_live,
            })),
            writer: Mutex::new(WriterState {
                next_id: points.len() as u32,
                owner,
                closed: false,
                seq: 0,
            }),
            merge_lock: Mutex::new(()),
            ctl: Mutex::new(MergeCtl {
                wake: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
            epoch: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            observer: Mutex::new(None),
        });
        let merge_thread = auto_merge.then(|| {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("gts-epoch-merge".into())
                .spawn(move || merge_loop(core))
                .expect("spawn merge thread")
        });
        MutableIndex {
            core,
            merge_thread: Mutex::new(merge_thread),
        }
    }

    fn pin(&self) -> Arc<EpochState<D>> {
        self.core
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Current merged epoch.
    pub fn epoch(&self) -> u64 {
        self.core.epoch.load(Ordering::Acquire)
    }

    /// Delta entries currently pending.
    pub fn pending(&self) -> u64 {
        self.pin().pending()
    }

    /// Merges performed so far.
    pub fn merges(&self) -> u64 {
        self.core.merges.load(Ordering::Relaxed)
    }

    /// Current merged shard count.
    pub fn n_shards(&self) -> usize {
        self.pin().shards.len()
    }

    /// The merged shards' stable ids, one list per shard — the partition
    /// the property tests check (disjoint, covering every merged point).
    pub fn shard_ids(&self) -> Vec<Vec<u32>> {
        self.pin().shards.iter().map(|s| s.ids.clone()).collect()
    }

    /// The live multiset — merged points minus pending deletes plus
    /// pending inserts — as `(stable id, point)` pairs sorted by id. This
    /// is exactly the set a from-scratch flat build must be given for the
    /// differential comparison.
    pub fn live(&self) -> Vec<(u32, PointN<D>)> {
        let state = self.pin();
        let digest = DeltaDigest::new(&state);
        let mut out: Vec<(u32, PointN<D>)> = Vec::with_capacity(state.n_live);
        for shard in &state.shards {
            for (i, &id) in shard.ids.iter().enumerate() {
                if !digest.deleted.contains(&id) {
                    out.push((id, shard.pts[i]));
                }
            }
        }
        out.extend(digest.live_inserts.iter().copied());
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Force a synchronous merge on the calling thread. Returns `true`
    /// when deltas were pending and the epoch advanced — the
    /// deterministic lever the oracle tests use instead of waiting on
    /// the background thread.
    pub fn merge_now(&self) -> bool {
        do_merge(&self.core)
    }

    /// Apply one mutation batch. Inserts are validated up front (the
    /// whole batch is refused on a bad position — never half-applied);
    /// deletes of non-live ids are skipped and counted in
    /// [`MutationAck::rejected`]. The batch is visible to every
    /// subsequent query the moment this returns.
    pub fn mutate(&self, muts: &[Mutation]) -> Result<MutationAck, MutateError> {
        for m in muts {
            if let Mutation::Insert { pos } = m {
                if pos.len() != D {
                    return Err(MutateError::DimMismatch {
                        expected: D,
                        got: pos.len(),
                    });
                }
                if !pos.iter().all(|v| v.is_finite()) {
                    return Err(MutateError::BadPosition);
                }
            }
        }
        let core = &self.core;
        let mut w = core.writer.lock().unwrap_or_else(|e| e.into_inner());
        if w.closed {
            return Err(MutateError::Closed);
        }
        let cur = core.state.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut deltas = cur.deltas.clone();
        let mut n_live = cur.n_live;
        let (mut accepted, mut rejected) = (0u64, 0u64);
        let mut assigned = Vec::new();
        for m in muts {
            match m {
                Mutation::Insert { pos } => {
                    let pt: PointN<D> = PointN(std::array::from_fn(|i| pos[i]));
                    let id = w.next_id;
                    w.next_id += 1;
                    let slot = home_of(&cur.shards, &pt);
                    w.seq += 1;
                    deltas[slot]
                        .inserts
                        .push(DeltaInsert { seq: w.seq, id, pt });
                    w.owner.insert(id, Owner::Pending(slot));
                    n_live += 1;
                    accepted += 1;
                    assigned.push(id);
                }
                Mutation::Delete { id } => match w.owner.get(id).copied() {
                    None => rejected += 1,
                    Some(Owner::Pending(slot)) => {
                        let pt = deltas[slot]
                            .inserts
                            .iter()
                            .rev()
                            .find(|i| i.id == *id)
                            .expect("pending owner maps into its slot")
                            .pt;
                        w.seq += 1;
                        deltas[slot].deletes.push(DeltaDelete {
                            seq: w.seq,
                            id: *id,
                            pt,
                            in_tree: false,
                        });
                        w.owner.remove(id);
                        n_live -= 1;
                        accepted += 1;
                    }
                    Some(Owner::Tree(s)) => {
                        let shard = &cur.shards[s];
                        let at = shard
                            .ids
                            .iter()
                            .position(|&x| x == *id)
                            .expect("tree owner maps into its shard");
                        w.seq += 1;
                        deltas[s].deletes.push(DeltaDelete {
                            seq: w.seq,
                            id: *id,
                            pt: shard.pts[at],
                            in_tree: true,
                        });
                        w.owner.remove(id);
                        n_live -= 1;
                        accepted += 1;
                    }
                },
            }
        }
        let next = Arc::new(EpochState {
            epoch: cur.epoch,
            seq: w.seq,
            shards: cur.shards.clone(),
            deltas,
            n_live,
        });
        let pending = next.pending();
        *core.state.lock().unwrap_or_else(|e| e.into_inner()) = next;
        drop(w);
        core.mutations.fetch_add(accepted, Ordering::Relaxed);
        if pending > 0 {
            let mut ctl = core.ctl.lock().unwrap_or_else(|e| e.into_inner());
            ctl.wake = true;
            core.cv.notify_all();
        }
        notify(
            core,
            &EpochEvent::Mutation {
                accepted,
                rejected,
                pending,
            },
        );
        Ok(MutationAck {
            accepted,
            rejected,
            assigned,
            epoch: cur.epoch,
            pending,
        })
    }

    /// Stop accepting mutations, flush every pending delta into a final
    /// merge, and join the background merge thread. Idempotent; queries
    /// keep working (against the fully merged state) afterwards. This is
    /// what [`crate::Service::close`] calls so no delta is ever silently
    /// dropped at shutdown.
    pub fn quiesce(&self) {
        {
            let mut w = self.core.writer.lock().unwrap_or_else(|e| e.into_inner());
            w.closed = true;
        }
        {
            let mut ctl = self.core.ctl.lock().unwrap_or_else(|e| e.into_inner());
            ctl.shutdown = true;
            self.core.cv.notify_all();
        }
        if let Some(h) = self
            .merge_thread
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
        // No-thread mode (auto_merge(false)), and belt-and-braces for the
        // threaded one: drain whatever is still pending.
        while do_merge(&self.core) {}
    }

    /// Point-in-time epoch counters.
    pub fn stats(&self) -> EpochStats {
        let state = self.pin();
        EpochStats {
            epoch: state.epoch,
            pending: state.pending(),
            merges: self.core.merges.load(Ordering::Relaxed),
            mutations: self.core.mutations.load(Ordering::Relaxed),
            live: state.n_live as u64,
            shards: state.shards.len() as u64,
        }
    }
}

impl<const D: usize> Drop for MutableIndex<D> {
    fn drop(&mut self) {
        self.quiesce();
    }
}

impl<const D: usize> TreeIndex for MutableIndex<D> {
    fn name(&self) -> &str {
        &self.core.name
    }

    fn dim(&self) -> usize {
        D
    }

    fn n_points(&self) -> usize {
        self.pin().n_live
    }

    fn run_batch(&self, op: OpKey, positions: &[Vec<f32>], policy: &ExecPolicy) -> BatchOutcome {
        run_state_batch(&self.pin(), op, positions, policy)
    }

    fn run_fused(&self, lanes: &[FusedLane], policy: &ExecPolicy) -> Option<FusedOutcome> {
        Some(run_state_fused(&self.pin(), lanes, policy))
    }

    fn mutate(&self, muts: &[Mutation]) -> Result<MutationAck, MutateError> {
        MutableIndex::mutate(self, muts)
    }

    fn quiesce(&self) {
        MutableIndex::quiesce(self);
    }

    fn epoch_stats(&self) -> Option<EpochStats> {
        Some(self.stats())
    }

    fn attach_epoch_observer(&self, observer: EpochObserverFn) {
        *self.core.observer.lock().unwrap_or_else(|e| e.into_inner()) = Some(observer);
    }
}

fn notify<const D: usize>(core: &Core<D>, event: &EpochEvent) {
    let obs = core
        .observer
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    if let Some(obs) = obs {
        obs(event);
    }
}

/// Home slot of a point: the shard whose box is nearest (ties to the
/// lowest index), slot 0 when the tree is empty.
fn home_of<const D: usize>(shards: &[Arc<EpochShard<D>>], p: &PointN<D>) -> usize {
    shards
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.bbox
                .dist2_to(p)
                .total_cmp(&b.1.bbox.dist2_to(p))
                .then(a.0.cmp(&b.0))
        })
        .map_or(0, |(i, _)| i)
}

fn merge_loop<const D: usize>(core: Arc<Core<D>>) {
    loop {
        {
            let mut ctl = core.ctl.lock().unwrap_or_else(|e| e.into_inner());
            while !ctl.wake && !ctl.shutdown {
                ctl = core.cv.wait(ctl).unwrap_or_else(|e| e.into_inner());
            }
            if ctl.shutdown {
                drop(ctl);
                while do_merge(&core) {}
                return;
            }
            ctl.wake = false;
        }
        if core.merge_debounce > Duration::ZERO {
            let deadline = Instant::now() + core.merge_debounce;
            let mut ctl = core.ctl.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if ctl.shutdown {
                    drop(ctl);
                    while do_merge(&core) {}
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = core
                    .cv
                    .wait_timeout(ctl, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                ctl = g;
            }
        }
        do_merge(&core);
    }
}

/// Fold every delta at or below the snapshot's sequence high-water mark
/// into fresh shards, re-splitting any touched shard that outgrew the
/// Morton partition, and swap the new state in. Returns whether anything
/// was merged. Serialized by `merge_lock`; the rebuild runs outside the
/// writer/state locks so readers and writers stay live throughout.
fn do_merge<const D: usize>(core: &Core<D>) -> bool {
    let _guard = core.merge_lock.lock().unwrap_or_else(|e| e.into_inner());
    let snap = core.state.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let cut = snap.seq;
    let flushed: u64 = snap.pending();
    if flushed == 0 {
        return false;
    }
    let t0 = Instant::now();

    // Ids deleted at or below the cut: globally unique, so one set covers
    // both tree points and pending inserts.
    let deleted: HashSet<u32> = snap
        .deltas
        .iter()
        .flat_map(|d| d.deletes.iter())
        .filter(|d| d.seq <= cut)
        .map(|d| d.id)
        .collect();

    // Per slot: carry untouched shards, collect touched ones' merged
    // point sets.
    enum Slot<const D: usize> {
        Carry(Arc<EpochShard<D>>),
        Rebuild(Vec<(u32, PointN<D>)>),
    }
    let mut slots: Vec<Slot<D>> = Vec::with_capacity(snap.deltas.len());
    let mut tree_after = 0usize;
    for (s, delta) in snap.deltas.iter().enumerate() {
        let touched = delta.inserts.iter().any(|i| i.seq <= cut)
            || delta.deletes.iter().any(|d| d.seq <= cut && d.in_tree)
            // A pending-insert delete still dirties the slot: the insert
            // it cancels is merged (filtered) here.
            || delta.deletes.iter().any(|d| d.seq <= cut);
        let base = snap.shards.get(s);
        if !touched {
            if let Some(shard) = base {
                tree_after += shard.ids.len();
                slots.push(Slot::Carry(Arc::clone(shard)));
            }
            continue;
        }
        let mut merged: Vec<(u32, PointN<D>)> = Vec::new();
        if let Some(shard) = base {
            for (i, &id) in shard.ids.iter().enumerate() {
                if !deleted.contains(&id) {
                    merged.push((id, shard.pts[i]));
                }
            }
        }
        for ins in &delta.inserts {
            if ins.seq <= cut && !deleted.contains(&ins.id) {
                merged.push((ins.id, ins.pt));
            }
        }
        tree_after += merged.len();
        slots.push(Slot::Rebuild(merged));
    }

    // Re-split policy: a rebuilt slot holding more than twice the ideal
    // Morton partition size splits into equal Morton chunks of at most
    // the ideal size each; empty slots disappear.
    let ideal = tree_after.div_ceil(core.target_shards).max(1);
    let mut new_shards: Vec<Arc<EpochShard<D>>> = Vec::new();
    let mut rebuilt = 0u32;
    for slot in slots {
        match slot {
            Slot::Carry(shard) => new_shards.push(shard),
            Slot::Rebuild(merged) => {
                if merged.is_empty() {
                    continue;
                }
                let chunks: Vec<Vec<(u32, PointN<D>)>> = if merged.len() > 2 * ideal {
                    let pts: Vec<PointN<D>> = merged.iter().map(|&(_, p)| p).collect();
                    let order = morton_order(&pts);
                    let sorted: Vec<(u32, PointN<D>)> =
                        order.iter().map(|&i| merged[i as usize]).collect();
                    sorted.chunks(ideal).map(|c| c.to_vec()).collect()
                } else {
                    vec![merged]
                };
                for chunk in chunks {
                    let (ids, pts): (Vec<u32>, Vec<PointN<D>>) = chunk.into_iter().unzip();
                    rebuilt += 1;
                    new_shards.push(Arc::new(EpochShard::build(
                        pts,
                        ids,
                        core.leaf_size,
                        core.split,
                    )));
                }
            }
        }
    }

    // Swap: re-home the deltas that arrived during the rebuild onto the
    // new shard list and rebuild the writer's routing table.
    let mut w = core.writer.lock().unwrap_or_else(|e| e.into_inner());
    let mut state = core.state.lock().unwrap_or_else(|e| e.into_inner());
    let cur = state.clone();
    let mut tree_of: HashMap<u32, usize> = HashMap::new();
    for (s, shard) in new_shards.iter().enumerate() {
        for &id in &shard.ids {
            tree_of.insert(id, s);
        }
    }
    let n_slots = new_shards.len().max(1);
    let mut new_deltas = vec![ShardDelta::<D>::default(); n_slots];
    let mut pending_slot: HashMap<u32, usize> = HashMap::new();
    for delta in &cur.deltas {
        for ins in &delta.inserts {
            if ins.seq > cut {
                let s = home_of(&new_shards, &ins.pt);
                pending_slot.insert(ins.id, s);
                new_deltas[s].inserts.push(ins.clone());
            }
        }
    }
    for delta in &cur.deltas {
        for del in &delta.deletes {
            if del.seq > cut {
                let mut del = del.clone();
                if let Some(&s) = tree_of.get(&del.id) {
                    // The target got merged under it mid-window: the
                    // delete is now a tree delete against the new shard.
                    del.in_tree = true;
                    new_deltas[s].deletes.push(del);
                } else if let Some(&s) = pending_slot.get(&del.id) {
                    del.in_tree = false;
                    new_deltas[s].deletes.push(del);
                } else {
                    debug_assert!(false, "pending delete lost its target");
                }
            }
        }
    }
    w.owner.clear();
    for (&id, &s) in &tree_of {
        w.owner.insert(id, Owner::Tree(s));
    }
    for (&id, &s) in &pending_slot {
        w.owner.insert(id, Owner::Pending(s));
    }
    for delta in &new_deltas {
        for del in &delta.deletes {
            w.owner.remove(&del.id);
        }
    }
    let n_live = w.owner.len();
    let epoch = snap.epoch + 1;
    let pending_after: u64 = new_deltas.iter().map(|d| d.len() as u64).sum();
    *state = Arc::new(EpochState {
        epoch,
        seq: cur.seq,
        shards: new_shards,
        deltas: new_deltas,
        n_live,
    });
    drop(state);
    drop(w);
    core.epoch.store(epoch, Ordering::Release);
    core.merges.fetch_add(1, Ordering::Relaxed);
    notify(
        core,
        &EpochEvent::Merge {
            epoch,
            rebuilt,
            flushed,
            pending_after,
            dur: t0.elapsed(),
        },
    );
    true
}

/// Per-batch digest of the pending deltas: what to mask and what to
/// brute-force.
struct DeltaDigest<const D: usize> {
    /// Every pending delete's id (tree and pending-insert alike).
    deleted: HashSet<u32>,
    /// Deleted *tree* points (id, coordinates) — PC subtracts these.
    del_tree: Vec<(u32, PointN<D>)>,
    /// Pending inserts still live (not cancelled by a pending delete).
    live_inserts: Vec<(u32, PointN<D>)>,
}

impl<const D: usize> DeltaDigest<D> {
    fn new(state: &EpochState<D>) -> Self {
        let mut deleted = HashSet::new();
        let mut del_tree = Vec::new();
        for delta in &state.deltas {
            for del in &delta.deletes {
                deleted.insert(del.id);
                if del.in_tree {
                    del_tree.push((del.id, del.pt));
                }
            }
        }
        let mut live_inserts = Vec::new();
        for delta in &state.deltas {
            for ins in &delta.inserts {
                if !deleted.contains(&ins.id) {
                    live_inserts.push((ins.id, ins.pt));
                }
            }
        }
        DeltaDigest {
            deleted,
            del_tree,
            live_inserts,
        }
    }

    fn is_empty(&self) -> bool {
        self.deleted.is_empty() && self.live_inserts.is_empty()
    }
}

fn to_point<const D: usize>(pos: &[f32]) -> PointN<D> {
    debug_assert_eq!(pos.len(), D);
    PointN(std::array::from_fn(|i| pos[i]))
}

/// Execute one batch against a pinned epoch snapshot: tree sweep over
/// every shard folded per query, then the delta-window corrections.
fn run_state_batch<const D: usize>(
    state: &EpochState<D>,
    op: OpKey,
    positions: &[Vec<f32>],
    policy: &ExecPolicy,
) -> BatchOutcome {
    let started = Instant::now();
    let n = positions.len();
    let digest = DeltaDigest::new(state);
    let n_del_tree = digest.del_tree.len();

    // kNN widens by the pending tree-delete count so the top-k always
    // survives the delete filter; NN and PC run unchanged.
    let tree_op = match op {
        OpKey::Knn(k) if n_del_tree > 0 => OpKey::Knn(k + n_del_tree),
        other => other,
    };
    let mut agg = StatAgg::default();
    let mut accs: Vec<Acc> = (0..n).map(|_| Acc::new(tree_op)).collect();
    for (si, shard) in state.shards.iter().enumerate() {
        let off = started.elapsed().as_micros() as u64;
        let sub0 = Instant::now();
        let out = shard
            .index
            .run_batch_profiled(tree_op, positions, policy, None);
        let dur = sub0.elapsed().as_micros() as u64;
        for (acc, r) in accs.iter_mut().zip(&out.results) {
            acc.absorb(r, &shard.ids);
        }
        agg.add(&SubRun {
            shard: si as u32,
            round: 0,
            queries: n as u32,
            out,
            offset_us: off,
            dur_us: dur,
        });
    }

    if digest.is_empty() {
        let results = accs.into_iter().map(Acc::finish).collect();
        return agg.finish(results, 0);
    }

    // Delta-window corrections, per query.
    let r2 = match op {
        OpKey::Pc(bits) => {
            let r = f32::from_bits(bits);
            r * r
        }
        _ => 0.0,
    };
    let mut results: Vec<QueryResult> = Vec::with_capacity(n);
    let mut nn_retry: Vec<usize> = Vec::new();
    for (qi, acc) in accs.into_iter().enumerate() {
        let q = to_point::<D>(&positions[qi]);
        match (op, acc.finish()) {
            (OpKey::Nn, QueryResult::Nn { dist2, id }) => {
                // The tree's nearest-distinct answer stands unless its
                // point was deleted — then a widening probe (below) finds
                // the runner-up exactly.
                let (mut d2, mut best) = if id != u32::MAX && digest.deleted.contains(&id) {
                    nn_retry.push(qi);
                    (f32::INFINITY, u32::MAX)
                } else {
                    (dist2, id)
                };
                for &(iid, ip) in &digest.live_inserts {
                    let d = ip.dist2(&q);
                    if d > 0.0 && d < d2 {
                        d2 = d;
                        best = iid;
                    }
                }
                results.push(QueryResult::Nn {
                    dist2: d2,
                    id: best,
                });
            }
            (OpKey::Knn(k), QueryResult::Knn { dist2, ids }) => {
                let mut kb = KBest::new(k);
                for (&d2, &id) in dist2.iter().zip(&ids) {
                    if !digest.deleted.contains(&id) {
                        kb.offer(d2, id);
                    }
                }
                for &(iid, ip) in &digest.live_inserts {
                    kb.offer(ip.dist2(&q), iid);
                }
                results.push(QueryResult::Knn {
                    dist2: kb.distances().to_vec(),
                    ids: kb.ids().to_vec(),
                });
            }
            (OpKey::Pc(_), QueryResult::Pc { count }) => {
                let minus = digest
                    .del_tree
                    .iter()
                    .filter(|(_, p)| p.dist2(&q) <= r2)
                    .count() as u32;
                let plus = digest
                    .live_inserts
                    .iter()
                    .filter(|(_, p)| p.dist2(&q) <= r2)
                    .count() as u32;
                results.push(QueryResult::Pc {
                    count: count - minus + plus,
                });
            }
            _ => unreachable!("accumulator mismatches op"),
        }
    }

    // NN retry: the tree answer was deleted. Probe with a widening kNN —
    // the merged top-k' is a prefix of the tree's distance order, so the
    // first surviving (positive-distance, non-deleted) entry is exact;
    // no survivor in a full-tree prefix means no tree answer at all.
    if !nn_retry.is_empty() {
        let tree_total = state.tree_points();
        let mut k_probe = n_del_tree + 2;
        let mut open = nn_retry;
        let mut round = 1u32;
        while !open.is_empty() {
            let subset: Vec<Vec<f32>> = open.iter().map(|&qi| positions[qi].clone()).collect();
            let mut kbs: Vec<KBest> = (0..open.len()).map(|_| KBest::new(k_probe)).collect();
            for (si, shard) in state.shards.iter().enumerate() {
                let off = started.elapsed().as_micros() as u64;
                let sub0 = Instant::now();
                let out =
                    shard
                        .index
                        .run_batch_profiled(OpKey::Knn(k_probe), &subset, policy, None);
                let dur = sub0.elapsed().as_micros() as u64;
                for (kb, r) in kbs.iter_mut().zip(&out.results) {
                    let QueryResult::Knn { dist2, ids } = r else {
                        unreachable!("knn probe answered with a different op")
                    };
                    for (&d2, &id) in dist2.iter().zip(ids) {
                        kb.offer(d2, shard.ids[id as usize]);
                    }
                }
                agg.add(&SubRun {
                    shard: si as u32,
                    round,
                    queries: subset.len() as u32,
                    out,
                    offset_us: off,
                    dur_us: dur,
                });
            }
            let exhaustive = k_probe >= tree_total;
            let mut still_open = Vec::new();
            for (i, &qi) in open.iter().enumerate() {
                let found = kbs[i]
                    .distances()
                    .iter()
                    .zip(kbs[i].ids())
                    .find(|&(&d2, &id)| d2 > 0.0 && !digest.deleted.contains(&id));
                match found {
                    Some((&d2, &id)) => {
                        if let QueryResult::Nn { dist2, id: best } = &mut results[qi] {
                            if d2 < *dist2 {
                                *dist2 = d2;
                                *best = id;
                            }
                        }
                    }
                    None if exhaustive => {} // truly no tree answer
                    None => still_open.push(qi),
                }
            }
            if exhaustive {
                break;
            }
            open = still_open;
            k_probe *= 2;
            round += 1;
        }
    }
    agg.finish(results, 0)
}

/// Execute one fused batch against a pinned epoch snapshot: a fused tree
/// sweep over every shard (per-lane kNN heaps widened by the pending
/// tree-delete count, exactly like the unfused path widens its `k`), then
/// the delta-window corrections applied *per constituent op* — so every
/// constituent's answer matches its unfused mutable run bit for bit.
fn run_state_fused<const D: usize>(
    state: &EpochState<D>,
    lanes: &[FusedLane],
    policy: &ExecPolicy,
) -> FusedOutcome {
    let started = Instant::now();
    let n = lanes.len();
    let digest = DeltaDigest::new(state);
    let n_del_tree = digest.del_tree.len();

    // Widen every requested k so each top-k survives the delete filter.
    let tree_lanes: Vec<FusedLane> = if n_del_tree == 0 {
        lanes.to_vec()
    } else {
        lanes
            .iter()
            .map(|l| FusedLane {
                knn_ks: l.knn_ks.iter().map(|&k| k + n_del_tree).collect(),
                ..l.clone()
            })
            .collect()
    };

    let mut agg = StatAgg::default();
    let mut saved = 0u64;
    let mut accs: Vec<FusedAcc> = tree_lanes.iter().map(FusedAcc::new).collect();
    for (si, shard) in state.shards.iter().enumerate() {
        let off = started.elapsed().as_micros() as u64;
        let sub0 = Instant::now();
        let fused = shard.index.run_fused_profiled(&tree_lanes, policy, None);
        let dur = sub0.elapsed().as_micros() as u64;
        for (acc, r) in accs.iter_mut().zip(&fused.lanes) {
            acc.absorb(r, &shard.ids);
        }
        saved += fused.outcome.fusion_saved_visits;
        agg.add(&SubRun {
            shard: si as u32,
            round: 0,
            queries: n as u32,
            out: fused.outcome,
            offset_us: off,
            dur_us: dur,
        });
    }
    let mut lane_results: Vec<FusedLaneResult> = accs.into_iter().map(FusedAcc::finish).collect();

    if !digest.is_empty() {
        let mut nn_retry: Vec<usize> = Vec::new();
        for (qi, lane) in lanes.iter().enumerate() {
            let q = to_point::<D>(&lane.pos);
            let res = &mut lane_results[qi];
            if let Some(QueryResult::Nn { dist2, id }) = res.nn.as_mut() {
                if *id != u32::MAX && digest.deleted.contains(id) {
                    nn_retry.push(qi);
                    *dist2 = f32::INFINITY;
                    *id = u32::MAX;
                }
                for &(iid, ip) in &digest.live_inserts {
                    let d = ip.dist2(&q);
                    if d > 0.0 && d < *dist2 {
                        *dist2 = d;
                        *id = iid;
                    }
                }
            }
            for (slot, &k) in lane.knn_ks.iter().enumerate() {
                let QueryResult::Knn { dist2, ids } = &res.knn[slot] else {
                    unreachable!("fused lane answered with a different op")
                };
                let mut kb = KBest::new(k);
                for (&d2, &id) in dist2.iter().zip(ids) {
                    if !digest.deleted.contains(&id) {
                        kb.offer(d2, id);
                    }
                }
                for &(iid, ip) in &digest.live_inserts {
                    kb.offer(ip.dist2(&q), iid);
                }
                res.knn[slot] = QueryResult::Knn {
                    dist2: kb.distances().to_vec(),
                    ids: kb.ids().to_vec(),
                };
            }
            for (slot, &bits) in lane.pc_radii.iter().enumerate() {
                let r = f32::from_bits(bits);
                let r2 = r * r;
                let QueryResult::Pc { count } = res.pc[slot] else {
                    unreachable!("fused lane answered with a different op")
                };
                let minus = digest
                    .del_tree
                    .iter()
                    .filter(|(_, p)| p.dist2(&q) <= r2)
                    .count() as u32;
                let plus = digest
                    .live_inserts
                    .iter()
                    .filter(|(_, p)| p.dist2(&q) <= r2)
                    .count() as u32;
                res.pc[slot] = QueryResult::Pc {
                    count: count - minus + plus,
                };
            }
        }

        // NN retry: the tree answer was deleted — the same widening kNN
        // probe as the unfused path (a correction, so unfused sub-batches
        // are fine here).
        if !nn_retry.is_empty() {
            let tree_total = state.tree_points();
            let mut k_probe = n_del_tree + 2;
            let mut open = nn_retry;
            let mut round = 1u32;
            while !open.is_empty() {
                let subset: Vec<Vec<f32>> = open.iter().map(|&qi| lanes[qi].pos.clone()).collect();
                let mut kbs: Vec<KBest> = (0..open.len()).map(|_| KBest::new(k_probe)).collect();
                for (si, shard) in state.shards.iter().enumerate() {
                    let off = started.elapsed().as_micros() as u64;
                    let sub0 = Instant::now();
                    let out =
                        shard
                            .index
                            .run_batch_profiled(OpKey::Knn(k_probe), &subset, policy, None);
                    let dur = sub0.elapsed().as_micros() as u64;
                    for (kb, r) in kbs.iter_mut().zip(&out.results) {
                        let QueryResult::Knn { dist2, ids } = r else {
                            unreachable!("knn probe answered with a different op")
                        };
                        for (&d2, &id) in dist2.iter().zip(ids) {
                            kb.offer(d2, shard.ids[id as usize]);
                        }
                    }
                    agg.add(&SubRun {
                        shard: si as u32,
                        round,
                        queries: subset.len() as u32,
                        out,
                        offset_us: off,
                        dur_us: dur,
                    });
                }
                let exhaustive = k_probe >= tree_total;
                let mut still_open = Vec::new();
                for (i, &qi) in open.iter().enumerate() {
                    let found = kbs[i]
                        .distances()
                        .iter()
                        .zip(kbs[i].ids())
                        .find(|&(&d2, &id)| d2 > 0.0 && !digest.deleted.contains(&id));
                    match found {
                        Some((&d2, &id)) => {
                            if let Some(QueryResult::Nn { dist2, id: best }) =
                                lane_results[qi].nn.as_mut()
                            {
                                if d2 < *dist2 {
                                    *dist2 = d2;
                                    *best = id;
                                }
                            }
                        }
                        None if exhaustive => {} // truly no tree answer
                        None => still_open.push(qi),
                    }
                }
                if exhaustive {
                    break;
                }
                open = still_open;
                k_probe *= 2;
                round += 1;
            }
        }
    }

    let mut outcome = agg.finish(Vec::new(), 0);
    outcome.fused_ops = distinct_ops(lanes);
    outcome.fused_lanes = n as u64;
    outcome.fusion_saved_visits = saved;
    FusedOutcome {
        lanes: lane_results,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Backend;
    use gts_apps::oracle;
    use gts_points::gen::uniform;

    fn cpu() -> ExecPolicy {
        ExecPolicy::forced(Backend::Cpu)
    }

    fn positions(pts: &[PointN<3>]) -> Vec<Vec<f32>> {
        pts.iter().map(|p| p.0.to_vec()).collect()
    }

    fn live_points(idx: &MutableIndex<3>) -> Vec<PointN<3>> {
        idx.live().into_iter().map(|(_, p)| p).collect()
    }

    fn check_against_oracle(idx: &MutableIndex<3>, queries: &[PointN<3>]) {
        let live = live_points(idx);
        let qpos = positions(queries);
        let nn = idx.run_batch(OpKey::Nn, &qpos, &cpu());
        let knn = idx.run_batch(OpKey::Knn(4), &qpos, &cpu());
        let pc = idx.run_batch(OpKey::Pc(0.3f32.to_bits()), &qpos, &cpu());
        for (i, q) in queries.iter().enumerate() {
            let QueryResult::Nn { dist2, .. } = nn.results[i] else {
                panic!()
            };
            let want = oracle::nn_dist2_nonself(&live, q);
            if want.is_finite() {
                assert!((dist2 - want).abs() <= 1e-5 * want.max(1e-6), "nn {i}");
            } else {
                assert!(!dist2.is_finite(), "nn {i} expected empty");
            }
            let QueryResult::Knn { dist2, .. } = &knn.results[i] else {
                panic!()
            };
            let want = oracle::knn_dists(&live, q, 4);
            assert_eq!(dist2.len(), want.len(), "knn {i} len");
            for (got, want) in dist2.iter().zip(&want) {
                assert!((got - want).abs() <= 1e-5 * want.max(1e-6), "knn {i}");
            }
            let QueryResult::Pc { count } = pc.results[i] else {
                panic!()
            };
            assert_eq!(count, oracle::pc_count(&live, q, 0.3), "pc {i}");
        }
    }

    #[test]
    fn mutations_answered_exactly_in_delta_window_and_after_merge() {
        let pts = uniform::<3>(300, 42);
        let idx = MutableIndexBuilder::new("m", 4)
            .auto_merge(false)
            .build(&pts);
        let queries: Vec<PointN<3>> = uniform::<3>(48, 43)
            .into_iter()
            .chain(pts.iter().copied().take(16))
            .collect();
        check_against_oracle(&idx, &queries);

        // Insert a cluster + delete a spread of initial ids.
        let extra = uniform::<3>(40, 44);
        let mut muts: Vec<Mutation> = extra
            .iter()
            .map(|p| Mutation::Insert { pos: p.0.to_vec() })
            .collect();
        muts.extend((0..30).map(|i| Mutation::Delete { id: i * 7 }));
        let ack = idx.mutate(&muts).unwrap();
        assert_eq!(ack.accepted, 70);
        assert_eq!(ack.rejected, 0);
        assert_eq!(ack.assigned.len(), 40);
        assert!(ack.pending > 0);
        assert_eq!(idx.epoch(), 0);

        // Delta window: still exact.
        check_against_oracle(&idx, &queries);

        // Merge lands: epoch advances, still exact, deltas drained.
        assert!(idx.merge_now());
        assert_eq!(idx.epoch(), 1);
        assert_eq!(idx.pending(), 0);
        check_against_oracle(&idx, &queries);
        assert_eq!(idx.n_points(), 300 + 40 - 30);
    }

    #[test]
    fn deleted_nn_answer_falls_back_to_runner_up() {
        // Query exactly on a dataset point whose nearest neighbor gets
        // deleted: the widening probe must find the runner-up.
        let pts = uniform::<3>(100, 7);
        let idx = MutableIndexBuilder::new("m", 2)
            .auto_merge(false)
            .build(&pts);
        let q = pts[0];
        let qpos = vec![q.0.to_vec()];
        let QueryResult::Nn { id: nn_id, .. } = idx.run_batch(OpKey::Nn, &qpos, &cpu()).results[0]
        else {
            panic!()
        };
        idx.mutate(&[Mutation::Delete { id: nn_id }]).unwrap();
        let live = live_points(&idx);
        let QueryResult::Nn { dist2, id } = idx.run_batch(OpKey::Nn, &qpos, &cpu()).results[0]
        else {
            panic!()
        };
        let want = oracle::nn_dist2_nonself(&live, &q);
        assert!((dist2 - want).abs() <= 1e-5 * want.max(1e-6));
        assert_ne!(id, nn_id);
    }

    #[test]
    fn insert_then_delete_is_identity_and_unknown_delete_rejected() {
        let pts = uniform::<3>(64, 3);
        let idx = MutableIndexBuilder::new("m", 2)
            .auto_merge(false)
            .build(&pts);
        let before = idx.live();
        let ack = idx
            .mutate(&[Mutation::Insert {
                pos: vec![0.5, 0.5, 0.5],
            }])
            .unwrap();
        let id = ack.assigned[0];
        let ack = idx
            .mutate(&[Mutation::Delete { id }, Mutation::Delete { id }])
            .unwrap();
        assert_eq!(ack.accepted, 1);
        assert_eq!(ack.rejected, 1, "double delete rejected");
        assert_eq!(idx.live(), before);
        idx.merge_now();
        assert_eq!(idx.live(), before);
    }

    #[test]
    fn empty_index_grows_from_inserts() {
        let idx: MutableIndex<3> = MutableIndexBuilder::new("m", 2)
            .auto_merge(false)
            .build(&[]);
        assert_eq!(idx.n_points(), 0);
        let out = idx.run_batch(OpKey::Nn, &[vec![0.0, 0.0, 0.0]], &cpu());
        let QueryResult::Nn { dist2, id } = out.results[0] else {
            panic!()
        };
        assert!(!dist2.is_finite());
        assert_eq!(id, u32::MAX);

        let pts = uniform::<3>(50, 9);
        let muts: Vec<Mutation> = pts
            .iter()
            .map(|p| Mutation::Insert { pos: p.0.to_vec() })
            .collect();
        idx.mutate(&muts).unwrap();
        check_against_oracle(&idx, &pts[..8]);
        idx.merge_now();
        assert!(idx.n_shards() >= 1);
        check_against_oracle(&idx, &pts[..8]);
    }

    #[test]
    fn skewed_growth_resplits_touched_shard() {
        let pts = uniform::<3>(200, 11);
        let idx = MutableIndexBuilder::new("m", 4)
            .auto_merge(false)
            .build(&pts);
        let before = idx.n_shards();
        // Pour 10x the shard's ideal size into one corner.
        let muts: Vec<Mutation> = (0..500)
            .map(|i| Mutation::Insert {
                pos: vec![0.01 + (i as f32) * 1e-5, 0.01, 0.01],
            })
            .collect();
        idx.mutate(&muts).unwrap();
        idx.merge_now();
        assert!(
            idx.n_shards() > before,
            "skewed shard did not re-split: {} -> {}",
            before,
            idx.n_shards()
        );
        // Partition invariant: every live point in exactly one shard.
        let mut seen = HashSet::new();
        let mut total = 0usize;
        for ids in idx.shard_ids() {
            total += ids.len();
            for id in ids {
                assert!(seen.insert(id), "id {id} in two shards");
            }
        }
        assert_eq!(total, 700);
        check_against_oracle(&idx, &pts[..8]);
    }

    #[test]
    fn background_merge_thread_lands_and_quiesce_drains() {
        let pts = uniform::<3>(128, 13);
        let idx = MutableIndexBuilder::new("m", 2).build(&pts);
        idx.mutate(&[Mutation::Insert {
            pos: vec![0.2, 0.2, 0.2],
        }])
        .unwrap();
        // The background thread merges shortly; don't race it — just
        // require quiesce to leave nothing pending and the epoch moved.
        idx.quiesce();
        assert_eq!(idx.pending(), 0);
        assert!(idx.epoch() >= 1);
        assert_eq!(idx.n_points(), 129);
        assert!(matches!(
            idx.mutate(&[Mutation::Delete { id: 0 }]),
            Err(MutateError::Closed)
        ));
        // Queries still served after quiesce.
        let out = idx.run_batch(OpKey::Nn, &[vec![0.2, 0.2, 0.2]], &cpu());
        assert_eq!(out.results.len(), 1);
    }

    #[test]
    fn mutate_validates_positions_atomically() {
        let pts = uniform::<3>(32, 5);
        let idx = MutableIndexBuilder::new("m", 1)
            .auto_merge(false)
            .build(&pts);
        let err = idx.mutate(&[
            Mutation::Insert {
                pos: vec![0.1, 0.1, 0.1],
            },
            Mutation::Insert {
                pos: vec![0.1, 0.1],
            },
        ]);
        assert!(matches!(
            err,
            Err(MutateError::DimMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert_eq!(idx.n_points(), 32, "nothing half-applied");
        let err = idx.mutate(&[Mutation::Insert {
            pos: vec![f32::NAN, 0.0, 0.0],
        }]);
        assert!(matches!(err, Err(MutateError::BadPosition)));
    }
}
