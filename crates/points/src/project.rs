//! Random projection for dimensionality reduction.
//!
//! The paper reduces Covtype (54-d) and MNIST (784-d) to 7 dimensions “by
//! random projection” (§6.1.2). We use the classic Gaussian projection
//! matrix with entries `N(0, 1/D_OUT)`, which approximately preserves
//! pairwise distances (Johnson–Lindenstrauss) — preserving cluster
//! structure, which is what the traversal benchmarks care about.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use gts_trees::PointN;

/// Project `D_IN`-dimensional rows to `D_OUT` dimensions with a seeded
/// Gaussian matrix.
pub fn random_projection<const D_IN: usize, const D_OUT: usize>(
    rows: &[[f32; D_IN]],
    seed: u64,
) -> Vec<PointN<D_OUT>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let scale = 1.0 / (D_OUT as f32).sqrt();
    // Column-major matrix: one column per output dimension.
    let matrix: Vec<[f32; D_IN]> = (0..D_OUT)
        .map(|_| {
            std::array::from_fn(|_| {
                // Box-Muller normal.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
                (-2.0 * u1.ln()).sqrt() * u2.cos() * scale
            })
        })
        .collect();
    rows.iter()
        .map(|row| {
            PointN(std::array::from_fn(|o| {
                matrix[o].iter().zip(row).map(|(m, r)| m * r).sum()
            }))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_linear() {
        let a = [1.0f32; 10];
        let b = [2.0f32; 10];
        let out = random_projection::<10, 3>(&[a, b], 5);
        for (x, y) in out[1].0.iter().zip(out[0].0.iter()) {
            assert!((x - 2.0 * y).abs() < 1e-4);
        }
    }

    #[test]
    fn projection_roughly_preserves_relative_distances() {
        // JL with D_OUT = 7 is loose; assert only that a far pair stays
        // meaningfully farther than a near pair, averaged over seeds.
        let near_a = [0.0f32; 54];
        let mut near_b = [0.0f32; 54];
        near_b[0] = 0.1;
        let mut far = [0.0f32; 54];
        for v in far.iter_mut() {
            *v = 3.0;
        }
        let mut wins = 0;
        for seed in 0..10 {
            let out = random_projection::<54, 7>(&[near_a, near_b, far], seed);
            if out[0].dist2(&out[2]) > out[0].dist2(&out[1]) {
                wins += 1;
            }
        }
        assert!(
            wins >= 9,
            "projection inverted distances in {} of 10 seeds",
            10 - wins
        );
    }

    #[test]
    fn projection_deterministic_per_seed() {
        let rows = [[1.0f32, -2.0, 0.5, 3.0]; 4];
        let a = random_projection::<4, 2>(&rows, 77);
        let b = random_projection::<4, 2>(&rows, 77);
        let c = random_projection::<4, 2>(&rows, 78);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = random_projection::<5, 2>(&[], 1);
        assert!(out.is_empty());
    }
}
