//! # gts-points — benchmark inputs, point sorting, and the sortedness profiler
//!
//! The paper evaluates on 18 benchmark/input pairs (§6.1.2). Two of its
//! datasets are procedurally defined and reproduced exactly in spirit
//! ([`gen::plummer`], [`gen::uniform`]); the other three are external data
//! files we do not have, so [`gen`] provides **surrogates** that match the
//! properties the paper exploits (dimensionality, cluster structure,
//! projection pipeline) — see DESIGN.md §2 for the substitution table.
//!
//! [`sort`] implements point sorting (paper §4.4): Morton-order and
//! tree-order sorts that place points with similar traversals in the same
//! warp, plus a seeded shuffle that produces the paper's “unsorted”
//! configuration from any input.
//!
//! [`profile`] implements the run-time sortedness profiler the paper adopts
//! from Jo & Kulkarni \[11\]: sample neighboring points, compare their
//! traversals, and decide lockstep vs. non-lockstep execution.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gen;
pub mod load;
pub mod profile;
pub mod project;
pub mod sort;

pub use gen::Dataset;
pub use profile::{profile_sortedness, SortednessReport};
