//! Run-time sortedness profiling (paper §4.4).
//!
//! “Jo and Kulkarni's run-time profiling method can be adopted to determine
//! whether points are sorted (by drawing several samples of neighboring
//! points from the set of points and seeing whether their traversals are
//! similar). If the points are sorted, we use the lockstep implementation;
//! otherwise we use the non-lockstep version.”
//!
//! The profiler is agnostic to the traversal: callers supply a closure
//! mapping a point index to its visit list (typically by running the
//! sequential traversal for just the sampled points). Similarity of two
//! traversals is Jaccard similarity of their visited-node sets.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Outcome of sortedness profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct SortednessReport {
    /// Mean Jaccard similarity of sampled neighboring traversals, in
    /// `[0, 1]`.
    pub mean_similarity: f64,
    /// Number of neighbor pairs sampled.
    pub pairs_sampled: usize,
    /// The decision: lockstep when similarity clears the threshold.
    pub use_lockstep: bool,
    /// The threshold used.
    pub threshold: f64,
}

/// Default similarity threshold above which lockstep pays off. Calibrated
/// against the Table 2 work-expansion sweep: sorted inputs profile well
/// above it, shuffled inputs well below.
pub const DEFAULT_THRESHOLD: f64 = 0.35;

/// Sample `pairs` neighboring point pairs from `n_points` and compare
/// their traversals. `visits(i)` returns the node-visit list of point `i`'s
/// traversal (order-insensitive; the profiler compares sets).
pub fn profile_sortedness(
    n_points: usize,
    pairs: usize,
    threshold: f64,
    seed: u64,
    visits: impl Fn(usize) -> Vec<u32>,
) -> SortednessReport {
    assert!(n_points >= 2, "profiling needs at least two points");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pairs = pairs.max(1);
    let mut total = 0.0;
    for _ in 0..pairs {
        let i = rng.gen_range(0..n_points - 1);
        let a = visits(i);
        let b = visits(i + 1);
        total += jaccard(&a, &b);
    }
    let mean = total / pairs as f64;
    SortednessReport {
        mean_similarity: mean,
        pairs_sampled: pairs,
        use_lockstep: mean >= threshold,
        threshold,
    }
}

/// Jaccard similarity of two visit lists, treated as sets.
fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut sa: Vec<u32> = a.to_vec();
    let mut sb: Vec<u32> = b.to_vec();
    sa.sort_unstable();
    sa.dedup();
    sb.sort_unstable();
    sb.dedup();
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_edges() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard(&[1, 2, 2, 3], &[2, 3, 4]), 0.5); // {1,2,3} vs {2,3,4}
    }

    #[test]
    fn identical_traversals_profile_as_sorted() {
        let r = profile_sortedness(100, 16, DEFAULT_THRESHOLD, 1, |_| vec![0, 1, 2, 3]);
        assert!(r.use_lockstep);
        assert_eq!(r.mean_similarity, 1.0);
    }

    #[test]
    fn disjoint_traversals_profile_as_unsorted() {
        // Each point visits its own disjoint node range.
        let r = profile_sortedness(100, 16, DEFAULT_THRESHOLD, 1, |i| {
            vec![10 * i as u32, 10 * i as u32 + 1]
        });
        assert!(!r.use_lockstep);
        assert_eq!(r.mean_similarity, 0.0);
    }

    #[test]
    fn profiler_is_deterministic() {
        let f = |i: usize| vec![i as u32 / 8];
        let a = profile_sortedness(64, 8, 0.5, 9, f);
        let b = profile_sortedness(64, 8, 0.5, 9, f);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn profiling_one_point_rejected() {
        let _ = profile_sortedness(1, 4, 0.5, 0, |_| vec![]);
    }
}
