//! Run-time sortedness profiling (paper §4.4).
//!
//! “Jo and Kulkarni's run-time profiling method can be adopted to determine
//! whether points are sorted (by drawing several samples of neighboring
//! points from the set of points and seeing whether their traversals are
//! similar). If the points are sorted, we use the lockstep implementation;
//! otherwise we use the non-lockstep version.”
//!
//! The profiler is agnostic to the traversal: callers supply a closure
//! mapping a point index to its visit list (typically by running the
//! sequential traversal for just the sampled points). Similarity of two
//! traversals is Jaccard similarity of their visited-node sets.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Outcome of sortedness profiling.
#[derive(Debug, Clone, PartialEq)]
pub struct SortednessReport {
    /// Mean Jaccard similarity of sampled neighboring traversals, in
    /// `[0, 1]`.
    pub mean_similarity: f64,
    /// Number of neighbor pairs sampled.
    pub pairs_sampled: usize,
    /// The decision: lockstep when similarity clears the threshold.
    pub use_lockstep: bool,
    /// The threshold used.
    pub threshold: f64,
}

/// Default similarity threshold above which lockstep pays off. Calibrated
/// against the Table 2 work-expansion sweep: sorted inputs profile well
/// above it, shuffled inputs well below.
pub const DEFAULT_THRESHOLD: f64 = 0.35;

/// Sample `pairs` neighboring point pairs from `n_points` and compare
/// their traversals. `visits(i)` returns the node-visit list of point `i`'s
/// traversal (order-insensitive; the profiler compares sets).
pub fn profile_sortedness(
    n_points: usize,
    pairs: usize,
    threshold: f64,
    seed: u64,
    visits: impl Fn(usize) -> Vec<u32>,
) -> SortednessReport {
    assert!(n_points >= 2, "profiling needs at least two points");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pairs = pairs.max(1);
    let mut total = 0.0;
    for _ in 0..pairs {
        let i = rng.gen_range(0..n_points - 1);
        let a = visits(i);
        let b = visits(i + 1);
        total += jaccard(&a, &b);
    }
    let mean = total / pairs as f64;
    SortednessReport {
        mean_similarity: mean,
        pairs_sampled: pairs,
        use_lockstep: mean >= threshold,
        threshold,
    }
}

/// Outcome of one [`ProfileCache`] consultation, for per-batch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheOutcome {
    /// The lookup was served from the cache (the profiler did not run).
    pub hit: bool,
    /// Entries dropped during this consultation (TTL expiry observed on
    /// lookup, or a capacity/stale sweep on insert).
    pub evictions: u64,
}

/// Seeded FNV-1a hash of a profile-cache key's parts. Callers mix in the
/// facts that make two sub-batches interchangeable for profiling purposes
/// (operation, size bucket, spatial fingerprint); the seed keeps distinct
/// services from sharing decisions by accident.
pub fn profile_key(seed: u64, parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &part in parts {
        for b in part.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// A bounded, TTL-limited memo of [`SortednessReport`]s keyed by
/// [`profile_key`] hashes.
///
/// The §4.4 profiler samples neighbor traversals on every batch; for a
/// sharded index that cost repeats per sub-batch per round. Workloads are
/// sticky — consecutive batches against one shard usually carry the same
/// operation, land in the same size bucket, and touch the same region —
/// so the decision can be reused until the workload shifts (different key)
/// or the entry ages out (`ttl` batches, guarding against the *same* key
/// slowly drifting in similarity).
///
/// Time is an externally supplied `epoch` (the owner's batch counter), not
/// wall clock, so cache behavior is deterministic for a deterministic
/// batch sequence. All methods take `&self`; the map sits behind a mutex
/// and the cumulative counters are atomics, so shards can share one cache
/// across worker threads.
#[derive(Debug)]
pub struct ProfileCache {
    ttl: u64,
    capacity: usize,
    entries: Mutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    report: SortednessReport,
    inserted: u64,
}

/// Cumulative [`ProfileCache`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the profiler.
    pub misses: u64,
    /// Entries dropped (TTL expiry or capacity pressure).
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
}

impl ProfileCache {
    /// A cache whose entries live for `ttl` epochs and which holds at most
    /// `capacity` entries (oldest evicted first on overflow).
    ///
    /// # Panics
    /// Panics if `ttl == 0` or `capacity == 0` — a cache that can never
    /// serve a hit is a configuration error, not a runtime state.
    pub fn new(ttl: u64, capacity: usize) -> Self {
        assert!(ttl > 0, "profile cache TTL must be at least one epoch");
        assert!(capacity > 0, "profile cache needs capacity for one entry");
        ProfileCache {
            ttl,
            capacity,
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Entry lifetime in epochs.
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// Fetch the report cached under `key`, if it is still fresh at
    /// `epoch`. A stale entry is evicted and reported as a miss.
    pub fn lookup(&self, key: u64, epoch: u64) -> (Option<SortednessReport>, CacheOutcome) {
        let mut entries = self.entries.lock().expect("profile cache poisoned");
        match entries.get(&key) {
            Some(e) if epoch.saturating_sub(e.inserted) < self.ttl => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                (
                    Some(e.report.clone()),
                    CacheOutcome {
                        hit: true,
                        evictions: 0,
                    },
                )
            }
            Some(_) => {
                entries.remove(&key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                (
                    None,
                    CacheOutcome {
                        hit: false,
                        evictions: 1,
                    },
                )
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                (None, CacheOutcome::default())
            }
        }
    }

    /// Store `report` under `key` as of `epoch`, evicting stale entries
    /// and, under capacity pressure, the oldest entry. Returns how many
    /// entries were evicted.
    pub fn insert(&self, key: u64, report: SortednessReport, epoch: u64) -> u64 {
        let mut entries = self.entries.lock().expect("profile cache poisoned");
        let before = entries.len();
        entries.retain(|_, e| epoch.saturating_sub(e.inserted) < self.ttl);
        let mut evicted = (before - entries.len()) as u64;
        entries.insert(
            key,
            CacheEntry {
                report,
                inserted: epoch,
            },
        );
        while entries.len() > self.capacity {
            // Oldest insertion goes first; ties break on the smaller key so
            // eviction order is deterministic.
            let victim = entries
                .iter()
                .map(|(&k, e)| (e.inserted, k))
                .min()
                .map(|(_, k)| k)
                .expect("nonempty map has a minimum");
            entries.remove(&victim);
            evicted += 1;
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Cumulative counters plus the live entry count.
    pub fn stats(&self) -> ProfileCacheStats {
        let entries = self.entries.lock().expect("profile cache poisoned").len();
        ProfileCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

/// [`profile_sortedness`] with a [`ProfileCache`] in front: a fresh entry
/// under `key` short-circuits the sampling entirely; a miss runs the
/// profiler and memoizes its report verbatim, so a cached decision is
/// always exactly what a fresh profiler run at insertion time produced.
#[allow(clippy::too_many_arguments)]
pub fn profile_sortedness_cached(
    cache: &ProfileCache,
    key: u64,
    epoch: u64,
    n_points: usize,
    pairs: usize,
    threshold: f64,
    seed: u64,
    visits: impl Fn(usize) -> Vec<u32>,
) -> (SortednessReport, CacheOutcome) {
    let (cached, outcome) = cache.lookup(key, epoch);
    if let Some(report) = cached {
        return (report, outcome);
    }
    let report = profile_sortedness(n_points, pairs, threshold, seed, visits);
    let evictions = outcome.evictions + cache.insert(key, report.clone(), epoch);
    (
        report,
        CacheOutcome {
            hit: false,
            evictions,
        },
    )
}

/// Jaccard similarity of two visit lists, treated as sets.
fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut sa: Vec<u32> = a.to_vec();
    let mut sb: Vec<u32> = b.to_vec();
    sa.sort_unstable();
    sa.dedup();
    sb.sort_unstable();
    sb.dedup();
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_edges() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard(&[1, 2, 2, 3], &[2, 3, 4]), 0.5); // {1,2,3} vs {2,3,4}
    }

    #[test]
    fn identical_traversals_profile_as_sorted() {
        let r = profile_sortedness(100, 16, DEFAULT_THRESHOLD, 1, |_| vec![0, 1, 2, 3]);
        assert!(r.use_lockstep);
        assert_eq!(r.mean_similarity, 1.0);
    }

    #[test]
    fn disjoint_traversals_profile_as_unsorted() {
        // Each point visits its own disjoint node range.
        let r = profile_sortedness(100, 16, DEFAULT_THRESHOLD, 1, |i| {
            vec![10 * i as u32, 10 * i as u32 + 1]
        });
        assert!(!r.use_lockstep);
        assert_eq!(r.mean_similarity, 0.0);
    }

    #[test]
    fn profiler_is_deterministic() {
        let f = |i: usize| vec![i as u32 / 8];
        let a = profile_sortedness(64, 8, 0.5, 9, f);
        let b = profile_sortedness(64, 8, 0.5, 9, f);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn profiling_one_point_rejected() {
        let _ = profile_sortedness(1, 4, 0.5, 0, |_| vec![]);
    }

    #[test]
    fn profile_key_separates_parts_and_seeds() {
        let a = profile_key(1, &[1, 2, 3]);
        assert_eq!(a, profile_key(1, &[1, 2, 3]), "deterministic");
        assert_ne!(a, profile_key(2, &[1, 2, 3]), "seed matters");
        assert_ne!(a, profile_key(1, &[3, 2, 1]), "order matters");
        assert_ne!(a, profile_key(1, &[1, 2]), "length matters");
    }

    #[test]
    fn cache_miss_then_hit_returns_the_memoized_report() {
        let cache = ProfileCache::new(8, 16);
        let f = |i: usize| vec![i as u32 / 4];
        let (fresh, out) = profile_sortedness_cached(&cache, 42, 0, 64, 8, 0.5, 9, f);
        assert!(!out.hit);
        assert_eq!(fresh, profile_sortedness(64, 8, 0.5, 9, f));
        // Same key within TTL: the profiler must not run again (a visits
        // closure that panics proves it).
        let (hit, out) = profile_sortedness_cached(&cache, 42, 3, 64, 8, 0.5, 9, |_| {
            panic!("profiler ran on a cache hit")
        });
        assert!(out.hit);
        assert_eq!(hit, fresh);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cache_ttl_expiry_evicts_and_reprofiles() {
        let cache = ProfileCache::new(4, 16);
        let f = |i: usize| vec![i as u32];
        let (_, _) = profile_sortedness_cached(&cache, 7, 0, 32, 4, 0.5, 1, f);
        // Epoch 4 is the first epoch outside `inserted + ttl`.
        let (report, out) = profile_sortedness_cached(&cache, 7, 4, 32, 4, 0.5, 1, f);
        assert!(!out.hit);
        assert_eq!(out.evictions, 1, "stale entry dropped on lookup");
        assert_eq!(report, profile_sortedness(32, 4, 0.5, 1, f));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn cache_capacity_evicts_oldest_first() {
        let cache = ProfileCache::new(100, 2);
        let r = profile_sortedness(8, 2, 0.5, 0, |_| vec![1]);
        assert_eq!(cache.insert(1, r.clone(), 0), 0);
        assert_eq!(cache.insert(2, r.clone(), 1), 0);
        assert_eq!(cache.insert(3, r.clone(), 2), 1, "key 1 evicted");
        let (found, _) = cache.lookup(1, 2);
        assert!(found.is_none());
        let (found, _) = cache.lookup(2, 2);
        assert!(found.is_some());
        let (found, _) = cache.lookup(3, 2);
        assert!(found.is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    #[should_panic(expected = "TTL")]
    fn zero_ttl_cache_rejected() {
        let _ = ProfileCache::new(0, 4);
    }
}
