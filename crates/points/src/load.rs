//! Loading real datasets from disk.
//!
//! The suite's surrogates (DESIGN.md §2) stand in for Covtype, MNIST and
//! Geocity when the originals are unavailable. When you *do* have the
//! files, these loaders feed them straight into the same pipeline:
//!
//! * [`load_points`] — whitespace- or comma-separated numeric rows, one
//!   point per line (the UCI Covtype format after label-stripping, or any
//!   `x y` city list). Rows with the wrong arity are reported, not
//!   silently skipped.
//! * [`project_rows`] — reduce higher-dimensional rows to `D` dimensions
//!   by seeded Gaussian random projection, the paper's reduction recipe
//!   (“reduced to 200,000 7-dimensional points by random projection”).

use std::io::BufRead;
use std::path::Path;

use gts_trees::PointN;

/// Errors from dataset loading.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row had the wrong number of columns.
    BadArity {
        /// 1-based line number.
        line: usize,
        /// Columns found.
        found: usize,
        /// Columns expected.
        expected: usize,
    },
    /// A field failed to parse as a float.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The file contained no data rows.
    Empty,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadArity {
                line,
                found,
                expected,
            } => {
                write!(f, "line {line}: {found} columns, expected {expected}")
            }
            LoadError::BadNumber { line, token } => write!(f, "line {line}: bad number {token:?}"),
            LoadError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parse numeric rows from a reader: one point per line, fields separated
/// by commas and/or whitespace; blank lines and `#` comments skipped.
pub fn parse_points<const D: usize, R: BufRead>(reader: R) -> Result<Vec<PointN<D>>, LoadError> {
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .collect();
        if fields.len() != D {
            return Err(LoadError::BadArity {
                line: i + 1,
                found: fields.len(),
                expected: D,
            });
        }
        let mut coords = [0.0f32; D];
        for (a, tok) in fields.iter().enumerate() {
            coords[a] = tok.parse().map_err(|_| LoadError::BadNumber {
                line: i + 1,
                token: tok.to_string(),
            })?;
        }
        out.push(PointN(coords));
    }
    if out.is_empty() {
        return Err(LoadError::Empty);
    }
    Ok(out)
}

/// Load `D`-dimensional points from a file.
pub fn load_points<const D: usize>(path: impl AsRef<Path>) -> Result<Vec<PointN<D>>, LoadError> {
    let f = std::fs::File::open(path)?;
    parse_points(std::io::BufReader::new(f))
}

/// Reduce `D_IN`-dimensional points to `D_OUT` dimensions by seeded
/// Gaussian random projection (the paper's Covtype/MNIST recipe).
pub fn project_rows<const D_IN: usize, const D_OUT: usize>(
    rows: &[PointN<D_IN>],
    seed: u64,
) -> Vec<PointN<D_OUT>> {
    let raw: Vec<[f32; D_IN]> = rows.iter().map(|p| p.0).collect();
    crate::project::random_projection::<D_IN, D_OUT>(&raw, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_mixed_separators_and_comments() {
        let data = "# city list\n1.0, 2.0\n3.5\t-4.5\n\n0 0\n";
        let pts = parse_points::<2, _>(Cursor::new(data)).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], PointN([1.0, 2.0]));
        assert_eq!(pts[1], PointN([3.5, -4.5]));
    }

    #[test]
    fn wrong_arity_reported_with_line() {
        let data = "1 2\n3 4 5\n";
        match parse_points::<2, _>(Cursor::new(data)) {
            Err(LoadError::BadArity {
                line: 2,
                found: 3,
                expected: 2,
            }) => {}
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn bad_number_reported() {
        let data = "1 fish\n";
        match parse_points::<2, _>(Cursor::new(data)) {
            Err(LoadError::BadNumber { line: 1, token }) => assert_eq!(token, "fish"),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            parse_points::<2, _>(Cursor::new("# nothing\n")),
            Err(LoadError::Empty)
        ));
    }

    #[test]
    fn file_roundtrip_and_projection() {
        let dir = std::env::temp_dir().join("gts_points_load_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.csv");
        std::fs::write(&path, "1,2,3,4\n5,6,7,8\n").unwrap();
        let pts = load_points::<4>(&path).unwrap();
        assert_eq!(pts.len(), 2);
        let projected = project_rows::<4, 2>(&pts, 9);
        assert_eq!(projected.len(), 2);
        assert!(projected.iter().all(|p| p.is_finite()));
        std::fs::remove_file(&path).ok();
    }
}
