//! Dataset generators.
//!
//! All generators are deterministic given a seed (ChaCha8), so every
//! experiment in the harness is exactly reproducible.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use gts_trees::PointN;

use crate::project::random_projection;

/// The paper's input sets (§6.1.2). `Covtype`, `Mnist` and `Geocity` are
/// surrogates — synthetic data with the same dimensionality and clustering
/// structure as the originals (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 1M bodies from the Plummer model (Lonestar class C input).
    Plummer,
    /// Uniform random bodies / points.
    Random,
    /// Forest-cover surrogate: 54-d Gaussian mixture → 7-d random projection.
    Covtype,
    /// Handwritten-digit surrogate: 784-d sparse blobs → 7-d projection.
    Mnist,
    /// City-location surrogate: 2-d power-law clustered points.
    Geocity,
}

impl Dataset {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Plummer => "Plummer",
            Dataset::Random => "Random",
            Dataset::Covtype => "Covtype",
            Dataset::Mnist => "Mnist",
            Dataset::Geocity => "Geocity",
        }
    }
}

/// A body for the Barnes-Hut benchmark: position, velocity, mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: PointN<3>,
    /// Velocity.
    pub vel: PointN<3>,
    /// Mass.
    pub mass: f32,
}

/// Sample `n` bodies from the Plummer model (Aarseth, Hénon & Wielen
/// inversion), unit total mass, scale radius 1 — the construction behind
/// the Lonestar suite's class C input the paper uses.
pub fn plummer(n: usize, seed: u64) -> Vec<Body> {
    assert!(n > 0, "plummer model needs at least one body");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = 1.0 / n as f32;
    (0..n)
        .map(|_| {
            // Radius from the inverse cumulative mass profile, clipped at
            // the conventional 99th percentile to avoid far outliers.
            let x1: f32 = rng.gen_range(1e-6..0.999);
            let r = 1.0 / (x1.powf(-2.0 / 3.0) - 1.0).sqrt();
            let pos = random_direction(&mut rng, r);
            // Velocity via von Neumann rejection on g(q) = q²(1-q²)^3.5.
            let q = loop {
                let q: f32 = rng.gen_range(0.0..1.0);
                let g: f32 = rng.gen_range(0.0..0.1);
                if g < q * q * (1.0 - q * q).powf(3.5) {
                    break q;
                }
            };
            let vesc = std::f32::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
            let vel = random_direction(&mut rng, q * vesc);
            Body { pos, vel, mass: m }
        })
        .collect()
}

/// `n` bodies with uniform random position and velocity, equal mass — the
/// paper's Random n-body input.
pub fn random_bodies(n: usize, seed: u64) -> Vec<Body> {
    assert!(n > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let m = 1.0 / n as f32;
    (0..n)
        .map(|_| Body {
            pos: PointN(std::array::from_fn(|_| rng.gen_range(-1.0..1.0))),
            vel: PointN(std::array::from_fn(|_| rng.gen_range(-0.1..0.1))),
            mass: m,
        })
        .collect()
}

/// `n` uniform random points in `[-1, 1]^D` — the paper's Random
/// data-mining input (200 k × 7-d).
pub fn uniform<const D: usize>(n: usize, seed: u64) -> Vec<PointN<D>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| PointN(std::array::from_fn(|_| rng.gen_range(-1.0..1.0))))
        .collect()
}

/// Covtype surrogate: 7 anisotropic Gaussian clusters in 54-d (one per
/// forest cover class), random-projected to 7-d — the same reduction
/// pipeline the paper applies to the real dataset.
pub fn covtype_like(n: usize, seed: u64) -> Vec<PointN<7>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    const D_IN: usize = 54;
    const K: usize = 7;
    // Cluster centers and per-axis scales.
    let centers: Vec<[f32; D_IN]> = (0..K)
        .map(|_| std::array::from_fn(|_| rng.gen_range(-5.0..5.0)))
        .collect();
    let scales: Vec<[f32; D_IN]> = (0..K)
        .map(|_| std::array::from_fn(|_| rng.gen_range(0.05..1.5)))
        .collect();
    // Cover classes are imbalanced; weight clusters geometrically.
    let weights: Vec<f32> = (0..K).map(|k| 0.6f32.powi(k as i32)).collect();
    let total: f32 = weights.iter().sum();
    let raw: Vec<[f32; D_IN]> = (0..n)
        .map(|_| {
            let mut pick: f32 = rng.gen_range(0.0..total);
            let mut k = 0;
            while pick > weights[k] && k + 1 < K {
                pick -= weights[k];
                k += 1;
            }
            std::array::from_fn(|a| centers[k][a] + gaussian(&mut rng) * scales[k][a])
        })
        .collect();
    random_projection::<D_IN, 7>(&raw, seed ^ 0x9e3779b97f4a7c15)
}

/// MNIST surrogate: 10 digit-like sparse blobs in 784-d (each class
/// activates a contiguous band of ~150 "pixels"), projected to 7-d.
pub fn mnist_like(n: usize, seed: u64) -> Vec<PointN<7>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    const D_IN: usize = 784;
    const K: usize = 10;
    let bands: Vec<(usize, usize)> = (0..K)
        .map(|k| {
            let start = k * 60;
            (start, (start + 150).min(D_IN))
        })
        .collect();
    let raw: Vec<[f32; D_IN]> = (0..n)
        .map(|_| {
            let k = rng.gen_range(0..K);
            let (lo, hi) = bands[k];
            std::array::from_fn(|a| {
                if a >= lo && a < hi {
                    // "Ink": bright with stroke noise.
                    (0.8 + 0.2 * gaussian(&mut rng)).clamp(0.0, 1.0)
                } else if rng.gen_bool(0.02) {
                    // Background speckle.
                    rng.gen_range(0.0..0.3)
                } else {
                    0.0
                }
            })
        })
        .collect();
    random_projection::<D_IN, 7>(&raw, seed ^ 0x517cc1b727220a95)
}

/// Geocity surrogate: `n` 2-d points clustered into "cities" whose sizes
/// follow a Zipf law and whose spreads are small relative to the map —
/// reproducing the extreme clustering (and hence very short traversals and
/// extreme lockstep work expansion) the paper observes on this input.
pub fn geocity_like(n: usize, seed: u64) -> Vec<PointN<2>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n_cities = (n / 500).clamp(1, 400);
    let centers: Vec<PointN<2>> = (0..n_cities)
        .map(|_| PointN([rng.gen_range(-90.0..90.0), rng.gen_range(-180.0..180.0)]))
        .collect();
    // Zipf weights: city k has weight 1/(k+1).
    let weights: Vec<f32> = (0..n_cities).map(|k| 1.0 / (k + 1) as f32).collect();
    let total: f32 = weights.iter().sum();
    (0..n)
        .map(|_| {
            let mut pick: f32 = rng.gen_range(0.0..total);
            let mut k = 0;
            while pick > weights[k] && k + 1 < n_cities {
                pick -= weights[k];
                k += 1;
            }
            let c = centers[k];
            // Dense core with a light sprawl tail.
            let sigma = if rng.gen_bool(0.9) { 0.05 } else { 0.5 };
            PointN([
                c[0] + gaussian(&mut rng) * sigma,
                c[1] + gaussian(&mut rng) * sigma,
            ])
        })
        .collect()
}

/// Build the 7-d data-mining input for `ds` (`Covtype`/`Mnist`/`Random`).
/// Panics for `Geocity` (2-d; use [`geocity_like`]) and `Plummer` (bodies).
pub fn dataset_7d(ds: Dataset, n: usize, seed: u64) -> Vec<PointN<7>> {
    match ds {
        Dataset::Covtype => covtype_like(n, seed),
        Dataset::Mnist => mnist_like(n, seed),
        Dataset::Random => uniform::<7>(n, seed),
        other => panic!("{other:?} is not a 7-d dataset"),
    }
}

/// Standard normal deviate via Box-Muller.
fn gaussian(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

/// Uniform random direction scaled to length `r`.
fn random_direction(rng: &mut ChaCha8Rng, r: f32) -> PointN<3> {
    loop {
        let v = PointN([
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        ]);
        let len2 = v.dist2(&PointN::zero());
        if len2 > 1e-12 && len2 <= 1.0 {
            let s = r / len2.sqrt();
            return PointN([v[0] * s, v[1] * s, v[2] * s]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(plummer(50, 42), plummer(50, 42));
        assert_eq!(uniform::<7>(50, 42), uniform::<7>(50, 42));
        assert_eq!(covtype_like(50, 42), covtype_like(50, 42));
        assert_eq!(mnist_like(20, 42), mnist_like(20, 42));
        assert_eq!(geocity_like(50, 42), geocity_like(50, 42));
        assert_ne!(uniform::<7>(50, 42), uniform::<7>(50, 43));
    }

    #[test]
    fn plummer_total_mass_is_one() {
        let bodies = plummer(1000, 7);
        let m: f32 = bodies.iter().map(|b| b.mass).sum();
        assert!((m - 1.0).abs() < 1e-3);
        assert!(bodies
            .iter()
            .all(|b| b.pos.is_finite() && b.vel.is_finite()));
    }

    #[test]
    fn plummer_is_centrally_concentrated() {
        // Half-mass radius of the Plummer model is ~1.3 scale radii; check
        // more than half the bodies sit within r = 2.
        let bodies = plummer(2000, 8);
        let o = PointN::zero();
        let inside = bodies.iter().filter(|b| b.pos.dist(&o) < 2.0).count();
        assert!(inside > 1000, "only {inside}/2000 within r=2");
    }

    #[test]
    fn covtype_like_is_clustered() {
        // Clusteredness is scale-free: mean nearest-neighbor distance
        // relative to the dataset diameter is much lower for clustered data
        // than for uniform data of the same size.
        let clustered = covtype_like(400, 9);
        let flat = uniform::<7>(400, 9);
        assert!(relative_nn_dist(&clustered) < 0.8 * relative_nn_dist(&flat));
    }

    fn relative_nn_dist<const D: usize>(pts: &[PointN<D>]) -> f32 {
        let bbox = gts_trees::Aabb::of_points(pts);
        let diag = bbox.lo.dist(&bbox.hi);
        mean_nn_dist(pts) / diag
    }

    #[test]
    fn geocity_like_is_extremely_clustered() {
        let city = geocity_like(1000, 10);
        let flat: Vec<PointN<2>> = uniform::<2>(1000, 10)
            .iter()
            .map(|p| PointN([p[0] * 90.0, p[1] * 180.0]))
            .collect();
        assert!(relative_nn_dist(&city) < 0.1 * relative_nn_dist(&flat));
    }

    #[test]
    fn mnist_like_finite_and_sized() {
        let pts = mnist_like(100, 11);
        assert_eq!(pts.len(), 100);
        assert!(pts.iter().all(PointN::is_finite));
    }

    #[test]
    fn dataset_names_match_paper() {
        assert_eq!(Dataset::Covtype.name(), "Covtype");
        assert_eq!(Dataset::Geocity.name(), "Geocity");
    }

    #[test]
    #[should_panic(expected = "not a 7-d dataset")]
    fn dataset_7d_rejects_geocity() {
        let _ = dataset_7d(Dataset::Geocity, 10, 0);
    }

    fn mean_nn_dist<const D: usize>(pts: &[PointN<D>]) -> f32 {
        let mut acc = 0.0;
        for (i, p) in pts.iter().enumerate() {
            let mut best = f32::INFINITY;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(p.dist2(q));
                }
            }
            acc += best.sqrt();
        }
        acc / pts.len() as f32
    }
}
