//! Point sorting (paper §4.4) and its inverse, shuffling.
//!
//! Sorting places points with similar traversals consecutively so that the
//! 32 points of a warp traverse similar parts of the tree, bounding
//! lockstep work expansion. Two general sorts are provided:
//!
//! * [`morton_order`] — interleave the bits of quantized coordinates
//!   (Z-order curve); purely geometric, works for any dimension.
//! * [`tree_order`] — sort points by the preorder index of the tree leaf
//!   they descend to, using any tree's `locate`; this matches the
//!   traversal structure even for metric trees (VP) where geometric
//!   curves are less faithful.
//!
//! [`shuffle`] produces the paper's “unsorted” configuration from any
//! point set, deterministically.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use gts_trees::{Aabb, PointN};

/// Bits per dimension used by the Morton quantization.
const MORTON_BITS: u32 = 10;

/// Morton (Z-order) key of `p` within `bbox`: quantize each coordinate to
/// `MORTON_BITS` (10) bits and interleave across dimensions.
pub fn morton_key<const D: usize>(p: &PointN<D>, bbox: &Aabb<D>) -> u128 {
    let mut q = [0u32; D];
    for a in 0..D {
        let ext = bbox.extent(a).max(f32::MIN_POSITIVE);
        let t = ((p[a] - bbox.lo[a]) / ext).clamp(0.0, 1.0);
        q[a] = (t * ((1 << MORTON_BITS) - 1) as f32) as u32;
    }
    let mut key: u128 = 0;
    // Interleave from the most significant bit so the key orders by the
    // coarsest spatial split first.
    for bit in (0..MORTON_BITS).rev() {
        for qa in q.iter().take(D) {
            key = (key << 1) | ((qa >> bit) & 1) as u128;
        }
    }
    key
}

/// The first `levels` levels of the Morton key of `p` within `bbox` — `D`
/// bits per level, coarsest split first. Level 1 identifies which of the
/// box's `2^D` octants holds `p`; the sharded profile cache uses it to
/// fingerprint where a sub-batch lands inside a shard without depending on
/// the full-precision key.
pub fn morton_prefix<const D: usize>(p: &PointN<D>, bbox: &Aabb<D>, levels: u32) -> u64 {
    let levels = levels.min(MORTON_BITS);
    (morton_key(p, bbox) >> ((MORTON_BITS - levels) * D as u32)) as u64
}

/// Return the permutation that sorts `pts` in Morton order. Apply it with
/// [`apply_perm`].
pub fn morton_order<const D: usize>(pts: &[PointN<D>]) -> Vec<u32> {
    let bbox = Aabb::of_points(pts);
    let mut order: Vec<u32> = (0..pts.len() as u32).collect();
    order.sort_by_cached_key(|&i| morton_key(&pts[i as usize], &bbox));
    order
}

/// Return the permutation that sorts points by a tree-derived key (e.g.
/// the preorder id of the leaf each point descends to, via
/// `KdTree::locate` / `VpTree::locate`).
pub fn tree_order<T, K: Ord>(pts: &[T], locate: impl Fn(&T) -> K) -> Vec<u32> {
    let mut order: Vec<u32> = (0..pts.len() as u32).collect();
    order.sort_by_cached_key(|&i| locate(&pts[i as usize]));
    order
}

/// Hilbert-curve key of a 2-d point within `bbox`: the classic `xy2d`
/// walk over a `2^HILBERT_ORDER × 2^HILBERT_ORDER` grid. The Hilbert curve
/// has strictly better locality than the Z-order curve (no long diagonal
/// jumps), at the cost of being dimension-specific; [`morton_key`] covers
/// arbitrary `D`.
pub fn hilbert_key_2d(p: &PointN<2>, bbox: &Aabb<2>) -> u64 {
    const ORDER: u32 = 16;
    let n: u64 = 1 << ORDER;
    let quant = |a: usize| -> u64 {
        let ext = bbox.extent(a).max(f32::MIN_POSITIVE);
        let t = ((p[a] - bbox.lo[a]) / ext).clamp(0.0, 1.0);
        ((t * (n - 1) as f32) as u64).min(n - 1)
    };
    let (mut x, mut y) = (quant(0), quant(1));
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant (canonical xy2d rotation over the full grid).
        if ry == 0 {
            if rx == 1 {
                x = (n - 1) - x;
                y = (n - 1) - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Return the permutation that sorts 2-d points along the Hilbert curve.
pub fn hilbert_order_2d(pts: &[PointN<2>]) -> Vec<u32> {
    let bbox = Aabb::of_points(pts);
    let mut order: Vec<u32> = (0..pts.len() as u32).collect();
    order.sort_by_cached_key(|&i| hilbert_key_2d(&pts[i as usize], &bbox));
    order
}

/// Apply a permutation: `out[k] = xs[perm[k]]`.
pub fn apply_perm<T: Clone>(xs: &[T], perm: &[u32]) -> Vec<T> {
    assert_eq!(xs.len(), perm.len(), "permutation length mismatch");
    perm.iter().map(|&i| xs[i as usize].clone()).collect()
}

/// Deterministically shuffle `xs` — the paper's “unsorted” inputs.
pub fn shuffle<T>(xs: &mut [T], seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    xs.shuffle(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn morton_key_orders_quadrants() {
        let bbox = Aabb {
            lo: PointN([0.0, 0.0]),
            hi: PointN([1.0, 1.0]),
        };
        // Z-order visits (lo,lo) before (hi,hi).
        let k00 = morton_key(&PointN([0.1, 0.1]), &bbox);
        let k11 = morton_key(&PointN([0.9, 0.9]), &bbox);
        assert!(k00 < k11);
    }

    #[test]
    fn morton_order_groups_neighbors() {
        // Two tight clusters; after sorting, each cluster must be
        // contiguous (no interleaving between clusters).
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(PointN([0.01 * i as f32, 0.0]));
            pts.push(PointN([100.0 + 0.01 * i as f32, 100.0]));
        }
        let order = morton_order(&pts);
        let sorted = apply_perm(&pts, &order);
        let labels: Vec<bool> = sorted.iter().map(|p| p[0] > 50.0).collect();
        let transitions = labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "clusters interleaved: {labels:?}");
    }

    #[test]
    fn morton_prefix_names_octants() {
        let bbox = Aabb {
            lo: PointN([0.0, 0.0]),
            hi: PointN([1.0, 1.0]),
        };
        // Level 1 of a 2-D key is the quadrant id in Z order:
        // (lo,lo)=0b00, (lo,hi)=0b01, (hi,lo)=0b10, (hi,hi)=0b11.
        assert_eq!(morton_prefix(&PointN([0.1, 0.1]), &bbox, 1), 0b00);
        assert_eq!(morton_prefix(&PointN([0.1, 0.9]), &bbox, 1), 0b01);
        assert_eq!(morton_prefix(&PointN([0.9, 0.1]), &bbox, 1), 0b10);
        assert_eq!(morton_prefix(&PointN([0.9, 0.9]), &bbox, 1), 0b11);
        // Deeper prefixes refine, never contradict, the coarse one.
        let p = PointN([0.9, 0.1]);
        assert_eq!(morton_prefix(&p, &bbox, 2) >> 2, 0b10);
    }

    #[test]
    fn tree_order_sorts_by_key() {
        let xs = [5, 3, 9, 1];
        let order = tree_order(&xs, |&x| x);
        assert_eq!(apply_perm(&xs, &order), vec![1, 3, 5, 9]);
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        shuffle(&mut a, 3);
        shuffle(&mut b, 3);
        assert_eq!(a, b);
        assert_ne!(a, (0..100).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_perm_checks_len() {
        let _ = apply_perm(&[1, 2, 3], &[0, 1]);
    }

    #[test]
    fn hilbert_matches_canonical_4x4_reference() {
        // xy2d reference values for the order-2 (4×4) curve.
        let expect = [
            [0u64, 1, 14, 15],
            [3, 2, 13, 12],
            [4, 7, 8, 11],
            [5, 6, 9, 10],
        ];
        // Quantization maps cell centers of a 4×4 grid onto the 2^16 grid;
        // scale the keys back down: each 4×4 cell covers (2^14)² sub-cells.
        let bbox = Aabb {
            lo: PointN([0.0, 0.0]),
            hi: PointN([1.0, 1.0]),
        };
        let cell = 1u64 << (2 * 14);
        for (yi, row) in expect.iter().enumerate() {
            for (xi, &want) in row.iter().enumerate() {
                let p = PointN([(xi as f32 + 0.5) / 4.0, (yi as f32 + 0.5) / 4.0]);
                let got = hilbert_key_2d(&p, &bbox) / cell;
                assert_eq!(got, want, "cell ({xi},{yi})");
            }
        }
    }

    #[test]
    fn hilbert_keys_of_adjacent_cells_are_close() {
        // Walk a fine grid row: consecutive cells' Hilbert keys never jump
        // by more than a small constant on average (the locality property
        // Z-order lacks at quadrant boundaries).
        let bbox = Aabb {
            lo: PointN([0.0, 0.0]),
            hi: PointN([1.0, 1.0]),
        };
        let steps = 256;
        let mut total_jump: u64 = 0;
        let mut prev = hilbert_key_2d(&PointN([0.0, 0.5]), &bbox);
        for i in 1..steps {
            let x = i as f32 / steps as f32;
            let k = hilbert_key_2d(&PointN([x, 0.5]), &bbox);
            total_jump += k.abs_diff(prev);
            prev = k;
        }
        // A straight row crosses the full curve range; the average jump
        // stays bounded by ~range/steps × small constant.
        let range: u64 = 1 << 32;
        assert!(
            total_jump / (steps - 1) < range / 16,
            "avg jump {}",
            total_jump / (steps - 1)
        );
    }

    #[test]
    fn hilbert_order_groups_clusters_contiguously() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(PointN([0.01 * i as f32, 0.0]));
            pts.push(PointN([100.0 + 0.01 * i as f32, 100.0]));
        }
        let sorted = apply_perm(&pts, &hilbert_order_2d(&pts));
        let labels: Vec<bool> = sorted.iter().map(|p| p[0] > 50.0).collect();
        let transitions = labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "clusters interleaved: {labels:?}");
    }

    proptest! {
        #[test]
        fn prop_hilbert_order_is_permutation(n in 1usize..200, seed in 0u64..100) {
            let pts = crate::gen::uniform::<2>(n, seed);
            let order = hilbert_order_2d(&pts);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        }

        #[test]
        fn prop_morton_order_is_permutation(n in 1usize..200, seed in 0u64..100) {
            let pts = crate::gen::uniform::<3>(n, seed);
            let order = morton_order(&pts);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        }

        #[test]
        fn prop_sorting_preserves_multiset(n in 1usize..200, seed in 0u64..100) {
            let pts = crate::gen::uniform::<2>(n, seed);
            let sorted = apply_perm(&pts, &morton_order(&pts));
            let key = |p: &PointN<2>| (p[0].to_bits(), p[1].to_bits());
            let mut a: Vec<_> = pts.iter().map(key).collect();
            let mut b: Vec<_> = sorted.iter().map(key).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
