//! # gts-apps — the paper's five traversal benchmarks
//!
//! Each benchmark (paper §6.1.2) is one module providing:
//!
//! * a **point type** (query state mutated during traversal),
//! * a [`gts_runtime::TraversalKernel`] implementation — the Figure 1
//!   pseudocode with the application's `truncate?`/`update` filled in and
//!   its structural facts (call sets, argument variance) declared,
//! * a **brute-force oracle** used by the tests to verify that every
//!   executor computes exactly the right answer.
//!
//! | Module | Tree | Guided? | Call sets | Notes |
//! |---|---|---|---|---|
//! | [`bh`] | oct-tree | no | 1 | traversal-variant `dsq` argument rides the rope stack |
//! | [`pc`] | kd (median) | no | 1 | radius count, bbox truncation |
//! | [`knn`] | kd (median) | yes | 2 | bounded k-best set, bbox pruning |
//! | [`nn`] | kd (midpoint) | yes | 2 | split-plane pruning, variant argument; [`nn::NnAabbKernel`] swaps in box pruning for the stackless skip walk |
//! | [`vp`] | vantage-point | yes | 2 | metric-shell pruning |
//! | [`wald`] | left-balanced implicit kd | — | — | NN/kNN/PC via the stack-free Wald walk ([`gts_runtime::gpu::stackless::run_wald`]) |
//! | [`fused`] | kd (either) | yes | 2 | NN + kNN + PC in one walk under the union prune bound ([`gts_runtime::FusedKernel`]); per-op answers bit-identical to the solo kernels |
//!
//! All three guided kernels carry the §4.3 `CALL_SETS_EQUIVALENT`
//! annotation: their call sets reorder the search but cannot change the
//! final nearest-neighbor answer, which the property tests verify.
//!
//! [`ray`] adds a sixth application beyond the paper's benchmark set — the
//! ray–BVH traversal its introduction motivates — to demonstrate the
//! kernel abstraction on a workload the authors did not evaluate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bh;
pub mod fused;
pub mod kbest;
pub mod knn;
pub mod nn;
pub mod oracle;
pub mod pc;
pub mod ray;
pub mod vp;
pub mod wald;
