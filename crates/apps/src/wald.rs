//! The paper's point benchmarks on the **left-balanced implicit kd-tree**
//! ([`gts_trees::LbKdTree`]), traversed by the stack-free Wald walk
//! ([`gts_runtime::gpu::stackless::run_wald`]).
//!
//! One point per node, split plane = the node's own coordinate, children
//! implicit at `2n + 1` / `2n + 2` — so there are no leaf buckets and no
//! child pushes; each kernel only states how a node's point updates the
//! query and what the query's current culling radius is. The point types
//! are shared with the rope-stack kernels ([`crate::nn::NnPoint`],
//! [`crate::knn::KnnPoint`], [`crate::pc::PcPoint`]) so the service can
//! swap executors without converting results.
//!
//! **Index space**: hits are recorded through the tree's `perm`, i.e. as
//! indices into the point array the [`LbKdTree`] was built over. When that
//! array is itself a pointer-tree's reordered `points` (how `gts-service`
//! builds it), the recorded ids land in the same space as the rope-stack
//! kernels' — one `perm` mapping works for both.

use gts_runtime::gpu::stackless::WaldKernel;
use gts_trees::layout::NodeBytes;
use gts_trees::{LbKdTree, NodeId};

use crate::knn::KnnPoint;
use crate::nn::NnPoint;
use crate::pc::PcPoint;

/// Node-record bytes of the implicit layout: the point's coordinates
/// only — the axis is `depth % D`, the children are arithmetic, and there
/// is no cold fragment.
fn lb_node_bytes<const D: usize>() -> NodeBytes {
    NodeBytes {
        hot: (D as u64) * 4,
        cold: 0,
        leaf_elem: (D as u64) * 4,
    }
}

/// Nearest-neighbor (self-excluding) over the left-balanced tree.
pub struct WaldNnKernel<'t, const D: usize> {
    tree: &'t LbKdTree<D>,
}

impl<'t, const D: usize> WaldNnKernel<'t, D> {
    /// Kernel over `tree`.
    pub fn new(tree: &'t LbKdTree<D>) -> Self {
        WaldNnKernel { tree }
    }
}

impl<const D: usize> WaldKernel for WaldNnKernel<'_, D> {
    type Point = NnPoint<D>;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn axis(&self, node: NodeId) -> usize {
        self.tree.split_dim[node as usize] as usize
    }
    fn split(&self, node: NodeId) -> f32 {
        self.tree.points[node as usize][self.axis(node)]
    }
    fn coord(&self, p: &NnPoint<D>, axis: usize) -> f32 {
        p.pos[axis]
    }
    fn process(&self, p: &mut NnPoint<D>, node: NodeId) {
        // Same update rule as the rope-stack NN kernels: strictly closer
        // and strictly nonzero (self-matches excluded).
        let d2 = self.tree.points[node as usize].dist2(&p.pos);
        if d2 > 0.0 && d2 < p.best_d2 {
            p.best_d2 = d2;
            p.best_idx = self.tree.perm[node as usize];
        }
    }
    fn cull_d2(&self, p: &NnPoint<D>) -> f32 {
        p.best_d2
    }
    fn node_bytes(&self) -> NodeBytes {
        lb_node_bytes::<D>()
    }
}

/// k-nearest-neighbor over the left-balanced tree.
pub struct WaldKnnKernel<'t, const D: usize> {
    tree: &'t LbKdTree<D>,
}

impl<'t, const D: usize> WaldKnnKernel<'t, D> {
    /// Kernel over `tree`; `k` lives in each point's [`KnnPoint::best`].
    pub fn new(tree: &'t LbKdTree<D>) -> Self {
        WaldKnnKernel { tree }
    }
}

impl<const D: usize> WaldKernel for WaldKnnKernel<'_, D> {
    type Point = KnnPoint<D>;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn axis(&self, node: NodeId) -> usize {
        self.tree.split_dim[node as usize] as usize
    }
    fn split(&self, node: NodeId) -> f32 {
        self.tree.points[node as usize][self.axis(node)]
    }
    fn coord(&self, p: &KnnPoint<D>, axis: usize) -> f32 {
        p.pos[axis]
    }
    fn process(&self, p: &mut KnnPoint<D>, node: NodeId) {
        let d2 = self.tree.points[node as usize].dist2(&p.pos);
        p.best.offer(d2, self.tree.perm[node as usize]);
    }
    fn cull_d2(&self, p: &KnnPoint<D>) -> f32 {
        p.best.bound()
    }
    fn node_bytes(&self) -> NodeBytes {
        lb_node_bytes::<D>()
    }
}

/// Point correlation (fixed-radius count) over the left-balanced tree.
pub struct WaldPcKernel<'t, const D: usize> {
    tree: &'t LbKdTree<D>,
    radius2: f32,
}

impl<'t, const D: usize> WaldPcKernel<'t, D> {
    /// Kernel counting neighbors within `radius` of each query.
    pub fn new(tree: &'t LbKdTree<D>, radius: f32) -> Self {
        assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
        WaldPcKernel {
            tree,
            radius2: radius * radius,
        }
    }
}

impl<const D: usize> WaldKernel for WaldPcKernel<'_, D> {
    type Point = PcPoint<D>;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn axis(&self, node: NodeId) -> usize {
        self.tree.split_dim[node as usize] as usize
    }
    fn split(&self, node: NodeId) -> f32 {
        self.tree.points[node as usize][self.axis(node)]
    }
    fn coord(&self, p: &PcPoint<D>, axis: usize) -> f32 {
        p.pos[axis]
    }
    fn process(&self, p: &mut PcPoint<D>, node: NodeId) {
        if self.tree.points[node as usize].dist2(&p.pos) <= self.radius2 {
            p.count += 1;
        }
    }
    fn cull_d2(&self, p: &PcPoint<D>) -> f32 {
        // Fixed radius: the walk enters the far side iff the plane is
        // within range (the bound never shrinks).
        let _ = p;
        self.radius2
    }
    fn node_bytes(&self) -> NodeBytes {
        lb_node_bytes::<D>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::NnKernel;
    use crate::oracle;
    use gts_points::gen::uniform;
    use gts_runtime::gpu::{autoropes, stackless, GpuConfig};
    use gts_trees::{KdTree, PointN, SplitPolicy};
    use proptest::prelude::*;

    #[test]
    fn wald_nn_matches_rope_stack_nn_exactly() {
        let pts = uniform::<3>(400, 61);
        let lb = LbKdTree::build(&pts);
        let kd = KdTree::build(&pts, 4, SplitPolicy::MidpointWidest);
        let cfg = GpuConfig::default();

        let mut wald_qs: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        stackless::run_wald(&WaldNnKernel::new(&lb), &mut wald_qs, &cfg);

        let mut rope_qs: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        autoropes::run(&NnKernel::new(&kd), &mut rope_qs, &cfg);

        for (i, (w, r)) in wald_qs.iter().zip(&rope_qs).enumerate() {
            // Same pairwise f32 arithmetic on both sides: the distances
            // are bit-identical, not just close.
            assert_eq!(w.best_d2, r.best_d2, "point {i} distance");
            // Map the rope-stack kernel's reordered index back to the
            // dataset; the Wald kernel already reports dataset ids.
            assert_eq!(w.best_idx, kd.perm[r.best_idx as usize], "point {i} id");
        }
    }

    #[test]
    fn wald_knn_matches_oracle_exactly() {
        let pts = uniform::<3>(300, 62);
        let lb = LbKdTree::build(&pts);
        let kernel = WaldKnnKernel::new(&lb);
        let mut qs: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, 4)).collect();
        stackless::run_wald(&kernel, &mut qs, &GpuConfig::default());
        for (i, q) in qs.iter().enumerate() {
            let want = oracle::knn_dists(&pts, &pts[i], 4);
            assert_eq!(q.best.distances(), &want[..], "point {i}");
        }
    }

    #[test]
    fn wald_pc_matches_oracle() {
        let pts = uniform::<3>(300, 63);
        let lb = LbKdTree::build(&pts);
        let kernel = WaldPcKernel::new(&lb, 0.4);
        let mut qs: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        let r = stackless::run_wald(&kernel, &mut qs, &GpuConfig::default());
        for q in &qs {
            assert_eq!(q.count, oracle::pc_count(&pts, &q.pos, 0.4));
        }
        assert_eq!(r.launch.counters.stack_bytes_peak, 0);
    }

    #[test]
    fn wald_walk_pays_no_stack_traffic() {
        let pts = uniform::<3>(500, 64);
        let lb = LbKdTree::build(&pts);
        let kernel = WaldNnKernel::new(&lb);
        let mut qs: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        let r = stackless::run_wald(&kernel, &mut qs, &GpuConfig::default());
        let stack_tx: u64 = r
            .launch
            .counters
            .per_region_transactions
            .iter()
            .filter(|(k, _)| k.contains("stack"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(stack_tx, 0);
        assert_eq!(r.launch.counters.stack_bytes_peak, 0);
        assert_eq!(r.max_stack_depth, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_wald_nn_exact(n in 2usize..150, seed in 0u64..50) {
            let pts = uniform::<3>(n, seed);
            let lb = LbKdTree::build(&pts);
            let kernel = WaldNnKernel::new(&lb);
            let mut qs: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
            stackless::run_wald(&kernel, &mut qs, &GpuConfig::default());
            for (i, q) in qs.iter().enumerate() {
                let want = oracle::nn_dist2_nonself(&pts, &pts[i]);
                if want.is_finite() {
                    prop_assert_eq!(q.best_d2, want, "point {}", i);
                } else {
                    prop_assert!(q.best_d2.is_infinite());
                }
            }
        }

        #[test]
        fn prop_wald_pc_exact(n in 1usize..150, seed in 0u64..50, r in 0.05f32..1.0) {
            let pts = uniform::<3>(n, seed);
            let lb = LbKdTree::build(&pts);
            let kernel = WaldPcKernel::new(&lb, r);
            let mut qs: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
            stackless::run_wald(&kernel, &mut qs, &GpuConfig::default());
            for (i, q) in qs.iter().enumerate() {
                prop_assert_eq!(q.count, oracle::pc_count(&pts, &pts[i], r));
            }
        }
    }

    #[test]
    fn index_space_documented_behavior() {
        // Building the lb tree over a *reordered* array (as the service
        // does) makes perm point into that array, not the original.
        let pts = uniform::<2>(50, 65);
        let kd = KdTree::build(&pts, 4, SplitPolicy::MedianCycle);
        let lb = LbKdTree::build(&kd.points);
        let kernel = WaldNnKernel::new(&lb);
        let mut qs: Vec<NnPoint<2>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        stackless::run_wald(&kernel, &mut qs, &GpuConfig::default());
        for q in &qs {
            let neighbor = kd.points[q.best_idx as usize];
            assert_eq!(neighbor.dist2(&q.pos), q.best_d2);
        }
        let _ = PointN([0.0f32; 2]);
    }
}
