//! Point Correlation (paper §6.1.2, Moore et al. \[20\]).
//!
//! For every point, count how many dataset points lie within a fixed
//! radius, by traversing a kd-tree and truncating at nodes whose bounding
//! box is entirely farther than the radius. This is the paper's running
//! unguided example (Figures 4 and 6): one call set, left child then
//! right child, always.

use gts_runtime::{Child, ChildBuf, TraversalKernel, VisitOutcome};
use gts_trees::layout::NodeBytes;
use gts_trees::{Aabb, KdTree, NodeId, PointN};

/// Traversal state of one PC query.
#[derive(Debug, Clone, PartialEq)]
pub struct PcPoint<const D: usize> {
    /// Query position.
    pub pos: PointN<D>,
    /// Points found within the radius so far.
    pub count: u32,
}

impl<const D: usize> PcPoint<D> {
    /// Fresh query at `pos`.
    pub fn new(pos: PointN<D>) -> Self {
        PcPoint { pos, count: 0 }
    }
}

/// The Point Correlation kernel over a median-split kd-tree.
pub struct PcKernel<'t, const D: usize> {
    tree: &'t KdTree<D>,
    radius2: f32,
    depth: usize,
}

impl<'t, const D: usize> PcKernel<'t, D> {
    /// Kernel counting neighbors within `radius` of each query.
    pub fn new(tree: &'t KdTree<D>, radius: f32) -> Self {
        assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
        PcKernel {
            tree,
            radius2: radius * radius,
            depth: tree.depth(),
        }
    }

    /// `can_correlate` from the paper's Figure 4: can this subtree contain
    /// any point within the radius?
    fn can_correlate(&self, node: NodeId, pos: &PointN<D>) -> bool {
        let b = Aabb {
            lo: self.tree.bbox_lo[node as usize],
            hi: self.tree.bbox_hi[node as usize],
        };
        b.dist2_to(pos) <= self.radius2
    }
}

impl<const D: usize> TraversalKernel for PcKernel<'_, D> {
    type Point = PcPoint<D>;
    type Args = ();
    const MAX_KIDS: usize = 2;
    const CALL_SETS: usize = 1;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.tree.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.tree.is_leaf(node).then(|| {
            (
                self.tree.first[node as usize],
                self.tree.count[node as usize],
            )
        })
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes::kd(D)
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) {}

    fn visit(
        &self,
        p: &mut PcPoint<D>,
        node: NodeId,
        _args: (),
        _forced: Option<usize>,
        kids: &mut ChildBuf<()>,
    ) -> VisitOutcome {
        if !self.can_correlate(node, &p.pos) {
            return VisitOutcome::Truncated;
        }
        if self.tree.is_leaf(node) {
            for q in self.tree.leaf_points(node) {
                if q.dist2(&p.pos) <= self.radius2 {
                    p.count += 1;
                }
            }
            return VisitOutcome::Leaf;
        }
        kids.push(Child {
            node: self.tree.left(node),
            args: (),
        });
        kids.push(Child {
            node: self.tree.right[node as usize],
            args: (),
        });
        VisitOutcome::Descended { call_set: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use gts_points::gen::uniform;
    use gts_runtime::cpu;
    use gts_runtime::gpu::{autoropes, lockstep, recursive, GpuConfig};
    use gts_trees::SplitPolicy;

    fn setup(n: usize, radius: f32) -> (Vec<PointN<3>>, KdTree<3>) {
        let pts = uniform::<3>(n, 21);
        let tree = KdTree::build(&pts, 8, SplitPolicy::MedianCycle);
        let _ = radius;
        (pts, tree)
    }

    #[test]
    fn cpu_matches_oracle() {
        let (pts, tree) = setup(300, 0.4);
        let kernel = PcKernel::new(&tree, 0.4);
        let mut queries: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut queries);
        for q in &queries {
            assert_eq!(q.count, oracle::pc_count(&pts, &q.pos, 0.4));
        }
    }

    #[test]
    fn all_executors_agree_with_oracle() {
        let (pts, tree) = setup(200, 0.5);
        let kernel = PcKernel::new(&tree, 0.5);
        let cfg = GpuConfig::default();
        let make = || pts.iter().map(|&p| PcPoint::new(p)).collect::<Vec<_>>();

        let mut a = make();
        autoropes::run(&kernel, &mut a, &cfg);
        let mut l = make();
        lockstep::run(&kernel, &mut l, &cfg);
        let mut r = make();
        recursive::run(&kernel, &mut r, &cfg, false);
        let mut rl = make();
        recursive::run(&kernel, &mut rl, &cfg, true);

        for (i, p) in pts.iter().enumerate() {
            let expect = oracle::pc_count(&pts, p, 0.5);
            assert_eq!(a[i].count, expect, "autoropes point {i}");
            assert_eq!(l[i].count, expect, "lockstep point {i}");
            assert_eq!(r[i].count, expect, "recursive point {i}");
            assert_eq!(rl[i].count, expect, "recursive-lockstep point {i}");
        }
    }

    #[test]
    fn zero_radius_counts_coincident_points_only() {
        let (pts, tree) = setup(100, 0.0);
        let kernel = PcKernel::new(&tree, 0.0);
        let mut queries: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut queries);
        // Every point at least finds itself.
        assert!(queries.iter().all(|q| q.count >= 1));
    }

    #[test]
    fn huge_radius_counts_everything() {
        let (pts, tree) = setup(150, 100.0);
        let kernel = PcKernel::new(&tree, 100.0);
        let mut queries: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut queries);
        assert!(queries.iter().all(|q| q.count == pts.len() as u32));
    }

    #[test]
    fn smaller_radius_visits_fewer_nodes() {
        // §6.3: “by decreasing this radius traversals will truncate more
        // quickly”.
        let (pts, tree) = setup(400, 0.0);
        let small = PcKernel::new(&tree, 0.05);
        let large = PcKernel::new(&tree, 0.8);
        let mut qs: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        let rs = cpu::run_sequential(&small, &mut qs);
        let mut ql: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        let rl = cpu::run_sequential(&large, &mut ql);
        assert!(rs.stats.avg_nodes() < rl.stats.avg_nodes());
    }

    #[test]
    #[should_panic(expected = "bad radius")]
    fn nan_radius_rejected() {
        let (_, tree) = setup(10, 0.0);
        let _ = PcKernel::new(&tree, f32::NAN);
    }
}
