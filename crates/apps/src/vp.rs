//! Nearest-neighbor search over a vantage-point tree (paper §6.1.2,
//! Yianilos \[27\]).
//!
//! At each interior node the query's distance `d` to the vantage point
//! both updates the current best (the vantage is a data point) and decides
//! which shell — inner (`≤ t`) or outer (`> t`) — to search first: a
//! guided traversal with two semantically equivalent call sets. The child
//! visits carry a lower bound on any distance inside the shell
//! (`max(0, d − t)` for inner, `max(0, t − d)` for outer), a
//! traversal-variant argument that rides the rope stack.
//!
//! Like [`crate::nn`], self-matches (distance exactly zero) are excluded:
//! the benchmark finds the nearest *distinct-position* neighbor.

use gts_runtime::{Child, ChildBuf, TraversalKernel, VisitOutcome};
use gts_trees::layout::NodeBytes;
use gts_trees::{NodeId, PointN, VpTree};

/// Traversal state of one VP query.
#[derive(Debug, Clone, PartialEq)]
pub struct VpPoint<const D: usize> {
    /// Query position.
    pub pos: PointN<D>,
    /// Best (non-squared) distance found so far.
    pub best_d: f32,
}

impl<const D: usize> VpPoint<D> {
    /// Fresh query at `pos`.
    pub fn new(pos: PointN<D>) -> Self {
        VpPoint {
            pos,
            best_d: f32::INFINITY,
        }
    }
}

/// The VP nearest-neighbor kernel.
pub struct VpKernel<'t, const D: usize> {
    tree: &'t VpTree<D>,
    depth: usize,
}

impl<'t, const D: usize> VpKernel<'t, D> {
    /// Kernel over `tree`.
    pub fn new(tree: &'t VpTree<D>) -> Self {
        let mut depth = 0;
        // Depth by walk (VpTree stores no depth): inner chain is n+1.
        fn rec<const D: usize>(t: &VpTree<D>, n: NodeId, d: usize, out: &mut usize) {
            *out = (*out).max(d);
            if !t.is_leaf(n) {
                rec(t, t.inner(n), d + 1, out);
                rec(t, t.outer[n as usize], d + 1, out);
            }
        }
        rec(tree, 0, 0, &mut depth);
        VpKernel { tree, depth }
    }
}

impl<const D: usize> TraversalKernel for VpKernel<'_, D> {
    type Point = VpPoint<D>;
    /// Lower bound on any distance within this subtree's shell.
    type Args = f32;
    const MAX_KIDS: usize = 2;
    const CALL_SETS: usize = 2;
    const CALL_SETS_EQUIVALENT: bool = true;
    const ARGS_VARIANT: bool = true;
    const ARG_BYTES: u64 = 4;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.tree.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.tree.is_leaf(node).then(|| {
            (
                self.tree.first[node as usize],
                self.tree.count[node as usize],
            )
        })
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes::vp(D)
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) -> f32 {
        0.0
    }

    fn choose(&self, p: &VpPoint<D>, node: NodeId, _args: f32) -> usize {
        let d = p.pos.dist(&self.tree.vantage[node as usize]);
        usize::from(d > self.tree.threshold[node as usize])
    }

    fn visit(
        &self,
        p: &mut VpPoint<D>,
        node: NodeId,
        shell_bound: f32,
        forced: Option<usize>,
        kids: &mut ChildBuf<f32>,
    ) -> VisitOutcome {
        if shell_bound > p.best_d {
            return VisitOutcome::Truncated;
        }
        if self.tree.is_leaf(node) {
            for q in self.tree.leaf_points(node) {
                let d = q.dist(&p.pos);
                if d > 0.0 && d < p.best_d {
                    p.best_d = d;
                }
            }
            return VisitOutcome::Leaf;
        }
        let vantage = self.tree.vantage[node as usize];
        let t = self.tree.threshold[node as usize];
        let d = p.pos.dist(&vantage);
        // The vantage point is itself a candidate (`update_closest`),
        // self-matches excluded.
        if d > 0.0 && d < p.best_d {
            p.best_d = d;
        }
        let inner_bound = shell_bound.max(d - t);
        let outer_bound = shell_bound.max(t - d);
        let inner = Child {
            node: self.tree.inner(node),
            args: inner_bound.max(0.0),
        };
        let outer = Child {
            node: self.tree.outer[node as usize],
            args: outer_bound.max(0.0),
        };
        let set = forced.unwrap_or_else(|| self.choose(p, node, shell_bound));
        if set == 0 {
            kids.push(inner);
            kids.push(outer);
        } else {
            kids.push(outer);
            kids.push(inner);
        }
        VisitOutcome::Descended { call_set: set }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use gts_points::gen::{geocity_like, uniform};
    use gts_runtime::cpu;
    use gts_runtime::gpu::{autoropes, lockstep, recursive, GpuConfig};
    use proptest::prelude::*;

    fn check<const D: usize>(pts: &[PointN<D>], results: &[VpPoint<D>]) {
        for (i, r) in results.iter().enumerate() {
            let want = oracle::nn_dist2_nonself(pts, &pts[i]).sqrt();
            if !want.is_finite() {
                assert!(r.best_d.is_infinite(), "point {i}");
                continue;
            }
            assert!(
                (r.best_d - want).abs() <= 1e-4 * want.max(1e-5) + 1e-6,
                "point {i}: {} vs {}",
                r.best_d,
                want
            );
        }
    }

    #[test]
    fn cpu_matches_oracle() {
        let pts = uniform::<7>(250, 51);
        let tree = VpTree::build(&pts, 8);
        let kernel = VpKernel::new(&tree);
        let mut qs: Vec<VpPoint<7>> = pts.iter().map(|&p| VpPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        check(&pts, &qs);
    }

    #[test]
    fn clustered_geocity_input_works() {
        let pts = geocity_like(300, 52);
        let tree = VpTree::build(&pts, 8);
        let kernel = VpKernel::new(&tree);
        let mut qs: Vec<VpPoint<2>> = pts.iter().map(|&p| VpPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        check(&pts, &qs);
    }

    #[test]
    fn gpu_executors_exact() {
        let pts = uniform::<3>(140, 53);
        let tree = VpTree::build(&pts, 4);
        let kernel = VpKernel::new(&tree);
        let cfg = GpuConfig::default();
        let make = || pts.iter().map(|&p| VpPoint::new(p)).collect::<Vec<_>>();

        let mut a = make();
        autoropes::run(&kernel, &mut a, &cfg);
        check(&pts, &a);
        let mut l = make();
        lockstep::run(&kernel, &mut l, &cfg);
        check(&pts, &l);
        let mut r = make();
        recursive::run(&kernel, &mut r, &cfg, false);
        check(&pts, &r);
        let mut rl = make();
        recursive::run(&kernel, &mut rl, &cfg, true);
        check(&pts, &rl);
    }

    #[test]
    fn single_point_tree() {
        let pts = [PointN([1.0, 2.0])];
        let tree = VpTree::build(&pts, 4);
        let kernel = VpKernel::new(&tree);
        let mut qs = vec![VpPoint::new(PointN([0.0, 0.0]))];
        cpu::run_sequential(&kernel, &mut qs);
        assert!((qs[0].best_d - pts[0].dist(&qs[0].pos)).abs() < 1e-6);
    }

    #[test]
    fn all_coincident_points_find_no_distinct_neighbor() {
        let pts = vec![PointN([3.0, 3.0]); 40];
        let tree = VpTree::build(&pts, 4);
        let kernel = VpKernel::new(&tree);
        let mut qs: Vec<VpPoint<2>> = pts.iter().map(|&p| VpPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        assert!(qs.iter().all(|q| q.best_d.is_infinite()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_vp_exact_lockstep(n in 1usize..100, seed in 0u64..50) {
            let pts = uniform::<3>(n, seed);
            let tree = VpTree::build(&pts, 4);
            let kernel = VpKernel::new(&tree);
            let mut qs: Vec<VpPoint<3>> = pts.iter().map(|&p| VpPoint::new(p)).collect();
            lockstep::run(&kernel, &mut qs, &GpuConfig::default());
            for (i, q) in qs.iter().enumerate() {
                let want = oracle::nn_dist2_nonself(&pts, &pts[i]).sqrt();
                if want.is_finite() {
                    prop_assert!((q.best_d - want).abs() <= 1e-4 * want.max(1e-5) + 1e-6);
                } else {
                    prop_assert!(q.best_d.is_infinite());
                }
            }
        }
    }
}
