//! Barnes-Hut n-body force computation (paper §6.1.2, Barnes & Hut \[1\]).
//!
//! Each body traverses the oct-tree; a cell whose center of mass is far
//! enough away (the opening criterion, tested against the per-level `dsq`
//! threshold of the paper's Figure 9) contributes as a single pseudo-body;
//! otherwise the traversal descends into its eight octants, passing
//! `dsq · 0.25` — the paper's canonical **traversal-variant argument**,
//! which autoropes pushes onto the rope stack next to each child pointer.
//!
//! BH is unguided (one call set: octants in index order), so the lockstep
//! variant is produced automatically, and the paper runs it with the rope
//! stack in shared memory.

use gts_points::gen::Body;
use gts_runtime::{Child, ChildBuf, TraversalKernel, VisitOutcome};
use gts_trees::layout::NodeBytes;
use gts_trees::{NodeId, Octree, PointN};

/// Traversal state of one body: its position and the acceleration being
/// accumulated this timestep.
#[derive(Debug, Clone, PartialEq)]
pub struct BhPoint {
    /// Body position.
    pub pos: PointN<3>,
    /// Accumulated acceleration.
    pub acc: PointN<3>,
}

impl BhPoint {
    /// Fresh accumulator for a body at `pos`.
    pub fn new(pos: PointN<3>) -> Self {
        BhPoint {
            pos,
            acc: PointN::zero(),
        }
    }
}

/// The Barnes-Hut force kernel over a linearized oct-tree.
pub struct BhKernel<'t> {
    tree: &'t Octree,
    /// Plummer softening (squared), keeps coincident bodies finite.
    pub eps2: f32,
    /// Root `dsq`: `(root_size / θ)²`.
    root_dsq: f32,
    depth: usize,
}

impl<'t> BhKernel<'t> {
    /// Kernel with opening angle `theta` and softening `eps`.
    pub fn new(tree: &'t Octree, theta: f32, eps: f32) -> Self {
        assert!(theta > 0.0, "opening angle must be positive");
        let root_size = tree.size[0];
        let mut depth = 0usize;
        fn rec(t: &Octree, n: NodeId, d: usize, out: &mut usize) {
            *out = (*out).max(d);
            if !t.is_leaf(n) {
                for c in t.present_children(n) {
                    rec(t, c, d + 1, out);
                }
            }
        }
        rec(tree, 0, 0, &mut depth);
        BhKernel {
            tree,
            eps2: eps * eps,
            root_dsq: (root_size / theta) * (root_size / theta),
            depth,
        }
    }

    /// `far_enough` from the paper's Figure 9a: the cell's center of mass
    /// is beyond the current level's opening threshold.
    fn far_enough(&self, node: NodeId, pos: &PointN<3>, dsq: f32) -> bool {
        self.tree.com[node as usize].dist2(pos) >= dsq
    }

    fn add_accel(&self, p: &mut BhPoint, source: &PointN<3>, mass: f32) {
        let d2 = source.dist2(&p.pos) + self.eps2;
        if d2 <= 0.0 {
            return;
        }
        let inv_d3 = 1.0 / (d2 * d2.sqrt());
        p.acc = p.acc.add_scaled(
            &PointN([
                source[0] - p.pos[0],
                source[1] - p.pos[1],
                source[2] - p.pos[2],
            ]),
            mass * inv_d3,
        );
    }
}

impl TraversalKernel for BhKernel<'_> {
    type Point = BhPoint;
    /// The per-level opening threshold `dsq` (Figure 9: `dsq * 0.25` is
    /// passed down).
    type Args = f32;
    const MAX_KIDS: usize = 8;
    const CALL_SETS: usize = 1;
    const ARGS_VARIANT: bool = true;
    const ARG_BYTES: u64 = 4;
    // `dsq` depends only on tree depth, not on the body: the lockstep
    // stack stores it once per warp (paper §5.2).
    const ARGS_WARP_UNIFORM: bool = true;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.tree.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.tree.is_leaf(node).then(|| {
            (
                self.tree.first[node as usize],
                self.tree.count[node as usize],
            )
        })
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes::oct()
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) -> f32 {
        self.root_dsq
    }

    fn visit(
        &self,
        p: &mut BhPoint,
        node: NodeId,
        dsq: f32,
        _forced: Option<usize>,
        kids: &mut ChildBuf<f32>,
    ) -> VisitOutcome {
        if self.tree.is_leaf(node) {
            // Direct interactions with the leaf's bodies.
            let (bodies, masses) = self.tree.leaf_bodies(node);
            for (b, &m) in bodies.iter().zip(masses) {
                self.add_accel(p, b, m);
            }
            return VisitOutcome::Leaf;
        }
        if self.far_enough(node, &p.pos, dsq) {
            // Far cell: one pseudo-body interaction, then truncate.
            self.add_accel(
                p,
                &self.tree.com[node as usize],
                self.tree.mass[node as usize],
            );
            return VisitOutcome::Truncated;
        }
        for c in self.tree.present_children(node) {
            kids.push(Child {
                node: c,
                args: dsq * 0.25,
            });
        }
        VisitOutcome::Descended { call_set: 0 }
    }

    fn visit_insts(&self) -> u64 {
        // Opening test + one interaction: ~20 FLOPs incl. rsqrt.
        20
    }
    fn leaf_elem_insts(&self) -> u64 {
        20
    }
}

/// Advance `bodies` one leapfrog (kick-drift) step using the accelerations
/// in `accs`. Used by the multi-timestep harness runs (the paper runs its
/// inputs “for five timesteps”).
pub fn integrate(bodies: &mut [Body], accs: &[BhPoint], dt: f32) {
    assert_eq!(
        bodies.len(),
        accs.len(),
        "body/acceleration length mismatch"
    );
    for (b, a) in bodies.iter_mut().zip(accs) {
        b.vel = b.vel.add_scaled(&a.acc, dt);
        b.pos = b.pos.add_scaled(&b.vel, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use gts_points::gen::{plummer, random_bodies};
    use gts_runtime::cpu;
    use gts_runtime::gpu::{autoropes, lockstep, recursive, GpuConfig};

    fn relative_err(got: &PointN<3>, want: &PointN<3>) -> f32 {
        let mag = want.dist(&PointN::zero()).max(1e-6);
        got.dist(want) / mag
    }

    #[test]
    fn small_theta_approaches_exact_forces() {
        let bodies = plummer(200, 61);
        let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
        let tree = Octree::build(&pos, &mass, 4);
        let kernel = BhKernel::new(&tree, 0.05, 1e-3);
        let mut pts: Vec<BhPoint> = pos.iter().map(|&p| BhPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut pts);
        for (i, p) in pts.iter().enumerate() {
            let exact = oracle::bh_accel_exact(&pos, &mass, i, kernel.eps2);
            // θ = 0.05 is nearly exact, modulo self-interaction softening
            // (the BH leaf includes the body itself at distance 0, which
            // contributes nothing beyond softening noise).
            assert!(
                relative_err(&p.acc, &exact) < 2e-2,
                "body {i}: {:?} vs {:?}",
                p.acc,
                exact
            );
        }
    }

    #[test]
    fn moderate_theta_is_a_reasonable_approximation() {
        let bodies = random_bodies(300, 62);
        let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
        let tree = Octree::build(&pos, &mass, 8);
        let kernel = BhKernel::new(&tree, 0.5, 1e-3);
        let mut pts: Vec<BhPoint> = pos.iter().map(|&p| BhPoint::new(p)).collect();
        let report = cpu::run_sequential(&kernel, &mut pts);
        let mut worst = 0.0f32;
        for (i, p) in pts.iter().enumerate() {
            let exact = oracle::bh_accel_exact(&pos, &mass, i, kernel.eps2);
            worst = worst.max(relative_err(&p.acc, &exact));
        }
        assert!(worst < 0.25, "worst relative error {worst}");
        // And it must actually have truncated (fewer visits than 2n nodes).
        assert!(report.stats.avg_nodes() < tree.n_nodes() as f64);
    }

    #[test]
    fn gpu_executors_match_cpu_bitwise() {
        let bodies = plummer(150, 63);
        let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
        let tree = Octree::build(&pos, &mass, 4);
        let kernel = BhKernel::new(&tree, 0.7, 1e-3);
        let cfg = GpuConfig::default();
        let make = || pos.iter().map(|&p| BhPoint::new(p)).collect::<Vec<_>>();

        let mut reference = make();
        cpu::run_sequential(&kernel, &mut reference);

        let mut a = make();
        autoropes::run(&kernel, &mut a, &cfg);
        assert_eq!(a, reference, "autoropes must preserve visit order bitwise");

        let mut l = make();
        lockstep::run(&kernel, &mut l, &cfg.clone().with_shared_stack());
        assert_eq!(l, reference, "lockstep must preserve visit order bitwise");

        let mut r = make();
        recursive::run(&kernel, &mut r, &cfg, false);
        assert_eq!(r, reference);
    }

    #[test]
    fn unguided_lockstep_and_autoropes_visit_superset() {
        let bodies = plummer(200, 64);
        let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
        let tree = Octree::build(&pos, &mass, 4);
        let kernel = BhKernel::new(&tree, 0.5, 1e-3);
        let cfg = GpuConfig::default();
        let mut a: Vec<BhPoint> = pos.iter().map(|&p| BhPoint::new(p)).collect();
        let mut b = a.clone();
        let ar = autoropes::run(&kernel, &mut a, &cfg);
        let ls = lockstep::run(&kernel, &mut b, &cfg);
        // Lockstep's per-point charge (the warp union) dominates the
        // individual traversal (Table 1's L vs N "Avg. # Nodes" pattern).
        let avg_ar = ar.stats.avg_nodes();
        let avg_ls = ls.stats.avg_nodes();
        assert!(avg_ls >= avg_ar, "{avg_ls} < {avg_ar}");
    }

    #[test]
    fn integrator_moves_bodies() {
        let mut bodies = random_bodies(10, 65);
        let before: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
        let accs: Vec<BhPoint> = bodies
            .iter()
            .map(|b| BhPoint {
                pos: b.pos,
                acc: PointN([1.0, 0.0, 0.0]),
            })
            .collect();
        integrate(&mut bodies, &accs, 0.1);
        for (b, old) in bodies.iter().zip(&before) {
            assert!(b.pos[0] > old[0]);
        }
    }

    #[test]
    #[should_panic(expected = "opening angle")]
    fn zero_theta_rejected() {
        let tree = Octree::build(&[PointN([0.0; 3])], &[1.0], 4);
        let _ = BhKernel::new(&tree, 0.0, 0.0);
    }
}
