//! Nearest Neighbor over a midpoint-split kd-tree (paper §6.1.2: “a
//! variation of nearest neighbor search with a different implementation of
//! the kd-tree structure”).
//!
//! Unlike kNN's bounding-box pruning, this implementation prunes with
//! **split-plane distances**: the recursive call to the far child carries
//! the squared distance from the query to the separating plane, and the
//! visit truncates when that carried bound already exceeds the current
//! best. The bound is a *traversal-variant argument* — exactly the `arg`
//! of the paper's Figure 5/7 — so `ARGS_VARIANT` is set and the value
//! rides the rope stack.
//!
//! Self-matches are excluded: queries drawn from the dataset search for
//! the nearest *distinct-position* neighbor (a zero-distance match would
//! collapse every traversal immediately, which does not match the NN
//! traversal lengths the paper reports).

use gts_runtime::{Child, ChildBuf, TraversalKernel, VisitOutcome};
use gts_trees::layout::NodeBytes;
use gts_trees::{KdTree, NodeId, PointN};

/// Traversal state of one NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct NnPoint<const D: usize> {
    /// Query position.
    pub pos: PointN<D>,
    /// Best squared distance found so far.
    pub best_d2: f32,
    /// Index (in the tree's reordered point array) of the best neighbor,
    /// or `u32::MAX` when none was found. Map through the tree's `perm`
    /// for the original dataset index.
    pub best_idx: u32,
}

impl<const D: usize> NnPoint<D> {
    /// Fresh query at `pos`.
    pub fn new(pos: PointN<D>) -> Self {
        NnPoint {
            pos,
            best_d2: f32::INFINITY,
            best_idx: u32::MAX,
        }
    }
}

/// The NN kernel over a midpoint-split kd-tree.
pub struct NnKernel<'t, const D: usize> {
    tree: &'t KdTree<D>,
    depth: usize,
}

impl<'t, const D: usize> NnKernel<'t, D> {
    /// Kernel over `tree` (build it with
    /// [`gts_trees::SplitPolicy::MidpointWidest`] for the paper's NN
    /// benchmark shape; any kd-tree works).
    pub fn new(tree: &'t KdTree<D>) -> Self {
        NnKernel {
            tree,
            depth: tree.depth(),
        }
    }
}

impl<const D: usize> TraversalKernel for NnKernel<'_, D> {
    type Point = NnPoint<D>;
    /// Squared distance from the query to the plane separating it from
    /// this subtree (0 for the subtree containing the query).
    type Args = f32;
    const MAX_KIDS: usize = 2;
    const CALL_SETS: usize = 2;
    const CALL_SETS_EQUIVALENT: bool = true;
    const ARGS_VARIANT: bool = true;
    const ARG_BYTES: u64 = 4;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.tree.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.tree.is_leaf(node).then(|| {
            (
                self.tree.first[node as usize],
                self.tree.count[node as usize],
            )
        })
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes::kd(D)
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) -> f32 {
        0.0
    }

    fn choose(&self, p: &NnPoint<D>, node: NodeId, _args: f32) -> usize {
        let axis = self.tree.split_dim[node as usize] as usize;
        usize::from(p.pos[axis] >= self.tree.split_val[node as usize])
    }

    fn visit(
        &self,
        p: &mut NnPoint<D>,
        node: NodeId,
        plane_d2: f32,
        forced: Option<usize>,
        kids: &mut ChildBuf<f32>,
    ) -> VisitOutcome {
        // Split-plane pruning: the carried bound is a lower bound on any
        // distance inside this subtree.
        if plane_d2 > p.best_d2 {
            return VisitOutcome::Truncated;
        }
        if self.tree.is_leaf(node) {
            let first = self.tree.first[node as usize];
            for (k, q) in self.tree.leaf_points(node).iter().enumerate() {
                let d2 = q.dist2(&p.pos);
                if d2 > 0.0 && d2 < p.best_d2 {
                    p.best_d2 = d2;
                    p.best_idx = first + k as u32;
                }
            }
            return VisitOutcome::Leaf;
        }
        let axis = self.tree.split_dim[node as usize] as usize;
        let diff = p.pos[axis] - self.tree.split_val[node as usize];
        let far_bound = plane_d2.max(diff * diff);
        let set = forced.unwrap_or_else(|| self.choose(p, node, plane_d2));
        let l = self.tree.left(node);
        let r = self.tree.right[node as usize];
        // Near child inherits the current bound; the far child's bound
        // tightens with this node's separating plane.
        let (near, far) = if p.pos[axis] < self.tree.split_val[node as usize] {
            (l, r)
        } else {
            (r, l)
        };
        if set == self.choose(p, node, plane_d2) {
            kids.push(Child {
                node: near,
                args: plane_d2,
            });
            kids.push(Child {
                node: far,
                args: far_bound,
            });
        } else {
            // Outvoted: far side first. Bounds stay attached to the right
            // children — order changes, correctness does not (§4.3).
            kids.push(Child {
                node: far,
                args: far_bound,
            });
            kids.push(Child {
                node: near,
                args: plane_d2,
            });
        }
        VisitOutcome::Descended { call_set: set }
    }
}

/// NN over the same kd-tree with **bounding-box pruning instead of the
/// carried split-plane bound** — no traversal-variant argument.
///
/// Slightly weaker pruning than [`NnKernel`] (the box distance at the node
/// replaces the accumulated plane bound), but the truncation test is fully
/// re-derivable from per-node state, which is what the stackless skip-link
/// walk ([`gts_runtime::gpu::stackless::run_skip`]) requires: it has no
/// stack to carry an argument on. Results are identical — a pruned box
/// only hides points the update rule would reject anyway.
pub struct NnAabbKernel<'t, const D: usize> {
    tree: &'t KdTree<D>,
    depth: usize,
}

impl<'t, const D: usize> NnAabbKernel<'t, D> {
    /// Kernel over `tree`.
    pub fn new(tree: &'t KdTree<D>) -> Self {
        NnAabbKernel {
            tree,
            depth: tree.depth(),
        }
    }
}

impl<const D: usize> TraversalKernel for NnAabbKernel<'_, D> {
    type Point = NnPoint<D>;
    type Args = ();
    const MAX_KIDS: usize = 2;
    const CALL_SETS: usize = 2;
    const CALL_SETS_EQUIVALENT: bool = true;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.tree.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.tree.is_leaf(node).then(|| {
            (
                self.tree.first[node as usize],
                self.tree.count[node as usize],
            )
        })
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes::kd(D)
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) {}

    fn choose(&self, p: &NnPoint<D>, node: NodeId, _args: ()) -> usize {
        let axis = self.tree.split_dim[node as usize] as usize;
        usize::from(p.pos[axis] >= self.tree.split_val[node as usize])
    }

    fn visit(
        &self,
        p: &mut NnPoint<D>,
        node: NodeId,
        _args: (),
        forced: Option<usize>,
        kids: &mut ChildBuf<()>,
    ) -> VisitOutcome {
        let b = gts_trees::Aabb {
            lo: self.tree.bbox_lo[node as usize],
            hi: self.tree.bbox_hi[node as usize],
        };
        if b.dist2_to(&p.pos) > p.best_d2 {
            return VisitOutcome::Truncated;
        }
        if self.tree.is_leaf(node) {
            let first = self.tree.first[node as usize];
            for (k, q) in self.tree.leaf_points(node).iter().enumerate() {
                let d2 = q.dist2(&p.pos);
                if d2 > 0.0 && d2 < p.best_d2 {
                    p.best_d2 = d2;
                    p.best_idx = first + k as u32;
                }
            }
            return VisitOutcome::Leaf;
        }
        let set = forced.unwrap_or_else(|| self.choose(p, node, ()));
        let l = Child {
            node: self.tree.left(node),
            args: (),
        };
        let r = Child {
            node: self.tree.right[node as usize],
            args: (),
        };
        if set == 0 {
            kids.push(l);
            kids.push(r);
        } else {
            kids.push(r);
            kids.push(l);
        }
        VisitOutcome::Descended { call_set: set }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use gts_points::gen::uniform;
    use gts_runtime::cpu;
    use gts_runtime::gpu::{autoropes, lockstep, recursive, stackless, GpuConfig};
    use gts_trees::SplitPolicy;
    use proptest::prelude::*;

    fn check<const D: usize>(pts: &[PointN<D>], results: &[NnPoint<D>]) {
        for (i, r) in results.iter().enumerate() {
            let want = oracle::nn_dist2_nonself(pts, &pts[i]);
            assert!(
                (r.best_d2 - want).abs() <= 1e-5 * want.max(1e-6),
                "point {i}: {} vs {}",
                r.best_d2,
                want
            );
        }
    }

    #[test]
    fn cpu_matches_oracle_midpoint_tree() {
        let pts = uniform::<3>(300, 41);
        let tree = KdTree::build(&pts, 8, SplitPolicy::MidpointWidest);
        let kernel = NnKernel::new(&tree);
        let mut qs: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        check(&pts, &qs);
    }

    #[test]
    fn cpu_matches_oracle_median_tree_too() {
        let pts = uniform::<2>(200, 42);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MedianCycle);
        let kernel = NnKernel::new(&tree);
        let mut qs: Vec<NnPoint<2>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        check(&pts, &qs);
    }

    #[test]
    fn gpu_executors_exact_with_variant_args() {
        // The variant argument must survive the rope stack in every
        // executor (Figure 7 line 16's behavior).
        let pts = uniform::<3>(130, 43);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MidpointWidest);
        let kernel = NnKernel::new(&tree);
        let cfg = GpuConfig::default();
        let make = || pts.iter().map(|&p| NnPoint::new(p)).collect::<Vec<_>>();

        let mut a = make();
        autoropes::run(&kernel, &mut a, &cfg);
        check(&pts, &a);
        let mut l = make();
        lockstep::run(&kernel, &mut l, &cfg);
        check(&pts, &l);
        let mut r = make();
        recursive::run(&kernel, &mut r, &cfg, false);
        check(&pts, &r);
        let mut rl = make();
        recursive::run(&kernel, &mut rl, &cfg, true);
        check(&pts, &rl);
    }

    #[test]
    fn best_idx_names_the_actual_neighbor() {
        let pts = uniform::<3>(200, 45);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MidpointWidest);
        let kernel = NnKernel::new(&tree);
        let mut qs: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        for q in &qs {
            assert_ne!(q.best_idx, u32::MAX);
            let neighbor = tree.points[q.best_idx as usize];
            assert!((neighbor.dist2(&q.pos) - q.best_d2).abs() <= 1e-6 * q.best_d2.max(1e-9));
        }
    }

    #[test]
    fn self_match_is_excluded() {
        let pts = uniform::<2>(64, 44);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MidpointWidest);
        let kernel = NnKernel::new(&tree);
        let mut qs: Vec<NnPoint<2>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        // Never the trivial zero; always the nearest distinct point.
        assert!(qs.iter().all(|q| q.best_d2 > 0.0 && q.best_d2.is_finite()));
    }

    #[test]
    fn aabb_kernel_matches_plane_kernel_everywhere() {
        let pts = uniform::<3>(250, 46);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MidpointWidest);
        let plane = NnKernel::new(&tree);
        let aabb = NnAabbKernel::new(&tree);
        let cfg = GpuConfig::default();
        let make = || pts.iter().map(|&p| NnPoint::new(p)).collect::<Vec<_>>();

        let mut a = make();
        autoropes::run(&plane, &mut a, &cfg);
        let mut b = make();
        autoropes::run(&aabb, &mut b, &cfg);
        // Weaker pruning, identical answers — bitwise.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.best_d2, y.best_d2);
            assert_eq!(x.best_idx, y.best_idx);
        }
    }

    #[test]
    fn aabb_kernel_rides_the_skip_walk() {
        // The reason this kernel exists: NN through the stackless
        // skip-link executor, which refuses variant-argument kernels.
        let pts = uniform::<3>(300, 47);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MidpointWidest);
        let aabb = NnAabbKernel::new(&tree);
        let cfg = GpuConfig::default();

        let mut sk = pts.iter().map(|&p| NnPoint::new(p)).collect::<Vec<_>>();
        let r = stackless::run_skip(&aabb, &mut sk, &tree.skip, &cfg);
        check(&pts, &sk);
        assert_eq!(r.launch.counters.stack_bytes_peak, 0);

        let mut ar = pts.iter().map(|&p| NnPoint::new(p)).collect::<Vec<_>>();
        autoropes::run(&aabb, &mut ar, &cfg);
        for (x, y) in sk.iter().zip(&ar) {
            assert_eq!(x.best_d2, y.best_d2);
            assert_eq!(x.best_idx, y.best_idx);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_nn_exact_across_executors(n in 2usize..100, seed in 0u64..50) {
            let pts = uniform::<3>(n, seed);
            let tree = KdTree::build(&pts, 4, SplitPolicy::MidpointWidest);
            let kernel = NnKernel::new(&tree);
            let mut qs: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
            lockstep::run(&kernel, &mut qs, &GpuConfig::default());
            for (i, q) in qs.iter().enumerate() {
                let want = oracle::nn_dist2_nonself(&pts, &pts[i]);
                if want.is_finite() {
                    prop_assert!((q.best_d2 - want).abs() <= 1e-5 * want.max(1e-6));
                } else {
                    prop_assert!(q.best_d2.is_infinite());
                }
            }
        }
    }
}
