//! Brute-force reference implementations used by the test suites.
//!
//! All oracles are O(n·m) scans with `f64` accumulation where it matters;
//! they are the ground truth every kernel × executor combination is checked
//! against.

use gts_trees::PointN;

/// Number of dataset points within `radius` of `q` (inclusive) — the Point
/// Correlation ground truth.
pub fn pc_count<const D: usize>(data: &[PointN<D>], q: &PointN<D>, radius: f32) -> u32 {
    let r2 = radius * radius;
    data.iter().filter(|p| p.dist2(q) <= r2).count() as u32
}

/// The k smallest squared distances from `q` to `data`, ascending — the
/// kNN ground truth (self-matches included, as in the benchmark).
pub fn knn_dists<const D: usize>(data: &[PointN<D>], q: &PointN<D>, k: usize) -> Vec<f32> {
    let mut d2: Vec<f32> = data.iter().map(|p| p.dist2(q)).collect();
    d2.sort_by(f32::total_cmp);
    d2.truncate(k);
    d2
}

/// The smallest squared distance from `q` to `data` — NN / VP ground truth.
pub fn nn_dist2<const D: usize>(data: &[PointN<D>], q: &PointN<D>) -> f32 {
    data.iter()
        .map(|p| p.dist2(q))
        .fold(f32::INFINITY, f32::min)
}

/// The smallest *non-zero* squared distance from `q` to `data`: the
/// nearest neighbor at a distinct position. This is what the NN and VP
/// benchmarks compute — querying the dataset's own points for their
/// nearest neighbor is only meaningful when the trivial self-match is
/// excluded (otherwise every traversal collapses after finding distance
/// zero, which is inconsistent with the traversal lengths the paper
/// reports for NN/VP).
pub fn nn_dist2_nonself<const D: usize>(data: &[PointN<D>], q: &PointN<D>) -> f32 {
    data.iter()
        .map(|p| p.dist2(q))
        .filter(|&d| d > 0.0)
        .fold(f32::INFINITY, f32::min)
}

/// Exact O(n²) gravitational acceleration on body `i` with Plummer
/// softening `eps2` — the Barnes-Hut ground truth (θ → 0 limit).
pub fn bh_accel_exact(pos: &[PointN<3>], mass: &[f32], i: usize, eps2: f32) -> PointN<3> {
    let q = pos[i];
    let mut acc = [0.0f64; 3];
    for (j, p) in pos.iter().enumerate() {
        if j == i {
            continue;
        }
        let d2 = (p.dist2(&q) + eps2) as f64;
        let inv_d3 = 1.0 / (d2 * d2.sqrt());
        let m = mass[j] as f64;
        for a in 0..3 {
            acc[a] += m * (p[a] - q[a]) as f64 * inv_d3;
        }
    }
    PointN([acc[0] as f32, acc[1] as f32, acc[2] as f32])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_count_inclusive_boundary() {
        let data = [PointN([0.0, 0.0]), PointN([3.0, 4.0]), PointN([10.0, 0.0])];
        assert_eq!(pc_count(&data, &PointN([0.0, 0.0]), 5.0), 2);
        assert_eq!(pc_count(&data, &PointN([0.0, 0.0]), 4.9), 1);
    }

    #[test]
    fn knn_dists_sorted_and_truncated() {
        let data = [PointN([1.0]), PointN([5.0]), PointN([2.0])];
        let d = knn_dists(&data, &PointN([0.0]), 2);
        assert_eq!(d, vec![1.0, 4.0]);
    }

    #[test]
    fn knn_k_larger_than_n_returns_all() {
        let data = [PointN([1.0])];
        assert_eq!(knn_dists(&data, &PointN([0.0]), 5).len(), 1);
    }

    #[test]
    fn nn_dist2_min() {
        let data = [PointN([2.0, 0.0]), PointN([0.0, 1.0])];
        assert_eq!(nn_dist2(&data, &PointN([0.0, 0.0])), 1.0);
    }

    #[test]
    fn bh_accel_two_bodies_symmetric() {
        let pos = [PointN([0.0, 0.0, 0.0]), PointN([2.0, 0.0, 0.0])];
        let mass = [1.0, 1.0];
        let a0 = bh_accel_exact(&pos, &mass, 0, 0.0);
        let a1 = bh_accel_exact(&pos, &mass, 1, 0.0);
        assert!((a0[0] - 0.25).abs() < 1e-6); // 1/d² = 1/4
        assert!((a1[0] + 0.25).abs() < 1e-6);
        assert_eq!(a0[1], 0.0);
    }
}
