//! k-Nearest Neighbor search over a median-split kd-tree (paper §6.1.2).
//!
//! The traversal prunes any subtree whose bounding box lies farther than
//! the current k-th-best distance. Which child is searched *first* depends
//! on the query's side of the split plane — two static call sets, making
//! kNN a **guided** traversal (the paper's Figure 5 shape). The call sets
//! are semantically equivalent (§4.3): descending the “wrong” child first
//! only delays the bound from tightening; the final k-best set is
//! unchanged. The kernel therefore carries `CALL_SETS_EQUIVALENT`,
//! enabling the lockstep variant via the per-warp majority vote.

use gts_runtime::{Child, ChildBuf, TraversalKernel, VisitOutcome};
use gts_trees::layout::NodeBytes;
use gts_trees::{Aabb, KdTree, NodeId, PointN};

use crate::kbest::KBest;

/// Traversal state of one kNN query.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnPoint<const D: usize> {
    /// Query position.
    pub pos: PointN<D>,
    /// The k best squared distances so far.
    pub best: KBest,
}

impl<const D: usize> KnnPoint<D> {
    /// Fresh query at `pos` for `k` neighbors.
    pub fn new(pos: PointN<D>, k: usize) -> Self {
        KnnPoint {
            pos,
            best: KBest::new(k),
        }
    }
}

/// The kNN kernel over a median-split kd-tree.
pub struct KnnKernel<'t, const D: usize> {
    tree: &'t KdTree<D>,
    depth: usize,
}

impl<'t, const D: usize> KnnKernel<'t, D> {
    /// Kernel over `tree`. The neighbor count `k` lives in each point.
    pub fn new(tree: &'t KdTree<D>) -> Self {
        KnnKernel {
            tree,
            depth: tree.depth(),
        }
    }

    fn prune(&self, node: NodeId, p: &KnnPoint<D>) -> bool {
        let b = Aabb {
            lo: self.tree.bbox_lo[node as usize],
            hi: self.tree.bbox_hi[node as usize],
        };
        b.dist2_to(&p.pos) > p.best.bound()
    }
}

impl<const D: usize> TraversalKernel for KnnKernel<'_, D> {
    type Point = KnnPoint<D>;
    type Args = ();
    const MAX_KIDS: usize = 2;
    const CALL_SETS: usize = 2;
    const CALL_SETS_EQUIVALENT: bool = true;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.tree.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.tree.is_leaf(node).then(|| {
            (
                self.tree.first[node as usize],
                self.tree.count[node as usize],
            )
        })
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes::kd(D)
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) {}

    fn choose(&self, p: &KnnPoint<D>, node: NodeId, _args: ()) -> usize {
        // `closer_to_left` from the paper's Figure 5.
        let axis = self.tree.split_dim[node as usize] as usize;
        usize::from(p.pos[axis] >= self.tree.split_val[node as usize])
    }

    fn visit(
        &self,
        p: &mut KnnPoint<D>,
        node: NodeId,
        _args: (),
        forced: Option<usize>,
        kids: &mut ChildBuf<()>,
    ) -> VisitOutcome {
        if self.prune(node, p) {
            return VisitOutcome::Truncated;
        }
        if self.tree.is_leaf(node) {
            let first = self.tree.first[node as usize];
            for (k, q) in self.tree.leaf_points(node).iter().enumerate() {
                p.best.offer(q.dist2(&p.pos), first + k as u32);
            }
            return VisitOutcome::Leaf;
        }
        let set = forced.unwrap_or_else(|| self.choose(p, node, ()));
        let l = Child {
            node: self.tree.left(node),
            args: (),
        };
        let r = Child {
            node: self.tree.right[node as usize],
            args: (),
        };
        if set == 0 {
            kids.push(l);
            kids.push(r);
        } else {
            kids.push(r);
            kids.push(l);
        }
        VisitOutcome::Descended { call_set: set }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use gts_points::gen::uniform;
    use gts_runtime::cpu;
    use gts_runtime::gpu::{autoropes, lockstep, recursive, GpuConfig};
    use gts_trees::SplitPolicy;
    use proptest::prelude::*;

    const K: usize = 4;

    fn check_matches_oracle<const D: usize>(pts: &[PointN<D>], results: &[KnnPoint<D>], k: usize) {
        for (i, r) in results.iter().enumerate() {
            let want = oracle::knn_dists(pts, &pts[i], k);
            let got = r.best.distances();
            assert_eq!(got.len(), want.len().min(k), "point {i} count");
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g - w).abs() <= 1e-5 * w.max(1.0),
                    "point {i}: {got:?} vs {want:?}"
                );
            }
        }
    }

    #[test]
    fn cpu_matches_oracle() {
        let pts = uniform::<3>(250, 31);
        let tree = KdTree::build(&pts, 8, SplitPolicy::MedianCycle);
        let kernel = KnnKernel::new(&tree);
        let mut qs: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, K)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        check_matches_oracle(&pts, &qs, K);
    }

    #[test]
    fn guided_traversal_beats_canonical_order() {
        // The whole point of the two call sets: visiting the near child
        // first tightens the bound sooner and prunes more.
        let pts = uniform::<3>(2000, 32);
        let tree = KdTree::build(&pts, 8, SplitPolicy::MedianCycle);
        let kernel = KnnKernel::new(&tree);

        // Guided run (kernel picks the order).
        let mut guided: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, K)).collect();
        let g = cpu::run_sequential(&kernel, &mut guided);

        // Degraded run: anti-guided (always the far child first) via the
        // forced-set hook.
        struct AntiGuided<'t>(KnnKernel<'t, 3>);
        impl TraversalKernel for AntiGuided<'_> {
            type Point = KnnPoint<3>;
            type Args = ();
            const MAX_KIDS: usize = 2;
            const CALL_SETS: usize = 2;
            const CALL_SETS_EQUIVALENT: bool = true;
            fn n_nodes(&self) -> usize {
                self.0.n_nodes()
            }
            fn is_leaf(&self, n: NodeId) -> bool {
                self.0.is_leaf(n)
            }
            fn leaf_range(&self, n: NodeId) -> Option<(u32, u32)> {
                self.0.leaf_range(n)
            }
            fn node_bytes(&self) -> NodeBytes {
                self.0.node_bytes()
            }
            fn max_depth(&self) -> usize {
                self.0.max_depth()
            }
            fn root_args(&self) {}
            fn visit(
                &self,
                p: &mut KnnPoint<3>,
                node: NodeId,
                _a: (),
                _f: Option<usize>,
                kids: &mut ChildBuf<()>,
            ) -> VisitOutcome {
                let anti = 1 - self.0.choose(p, node, ());
                self.0.visit(p, node, (), Some(anti), kids)
            }
        }
        let anti = AntiGuided(KnnKernel::new(&tree));
        let mut degraded: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, K)).collect();
        let d = cpu::run_sequential(&anti, &mut degraded);

        // Same answers (§4.3's equivalence claim) ...
        check_matches_oracle(&pts, &degraded, K);
        // ... but the guided order visits meaningfully fewer nodes.
        assert!(
            g.stats.avg_nodes() < 0.9 * d.stats.avg_nodes(),
            "{} vs {}",
            g.stats.avg_nodes(),
            d.stats.avg_nodes()
        );
    }

    #[test]
    fn all_gpu_executors_return_exact_neighbors() {
        let pts = uniform::<2>(150, 33);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MedianCycle);
        let kernel = KnnKernel::new(&tree);
        let cfg = GpuConfig::default();
        let make = || pts.iter().map(|&p| KnnPoint::new(p, K)).collect::<Vec<_>>();

        let mut a = make();
        autoropes::run(&kernel, &mut a, &cfg);
        check_matches_oracle(&pts, &a, K);

        let mut l = make();
        lockstep::run(&kernel, &mut l, &cfg);
        check_matches_oracle(&pts, &l, K);

        let mut r = make();
        recursive::run(&kernel, &mut r, &cfg, false);
        check_matches_oracle(&pts, &r, K);

        let mut rl = make();
        recursive::run(&kernel, &mut rl, &cfg, true);
        check_matches_oracle(&pts, &rl, K);
    }

    #[test]
    fn reported_ids_match_reported_distances() {
        let pts = uniform::<3>(200, 35);
        let tree = KdTree::build(&pts, 4, SplitPolicy::MedianCycle);
        let kernel = KnnKernel::new(&tree);
        let mut qs: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, K)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        for q in &qs {
            for (&d2, &id) in q.best.distances().iter().zip(q.best.ids()) {
                let neighbor = tree.points[id as usize];
                assert!((neighbor.dist2(&q.pos) - d2).abs() <= 1e-6 * d2.max(1.0));
            }
        }
    }

    #[test]
    fn k_exceeding_dataset_collects_everything() {
        let pts = uniform::<2>(5, 34);
        let tree = KdTree::build(&pts, 2, SplitPolicy::MedianCycle);
        let kernel = KnnKernel::new(&tree);
        let mut qs: Vec<KnnPoint<2>> = pts.iter().map(|&p| KnnPoint::new(p, 50)).collect();
        cpu::run_sequential(&kernel, &mut qs);
        assert!(qs.iter().all(|q| q.best.len() == 5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_lockstep_knn_exact(n in 2usize..120, seed in 0u64..50, k in 1usize..6) {
            let pts = uniform::<3>(n, seed);
            let tree = KdTree::build(&pts, 4, SplitPolicy::MedianCycle);
            let kernel = KnnKernel::new(&tree);
            let mut qs: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, k)).collect();
            lockstep::run(&kernel, &mut qs, &GpuConfig::default());
            for (i, q) in qs.iter().enumerate() {
                let want = oracle::knn_dists(&pts, &pts[i], k);
                for (g, w) in q.best.distances().iter().zip(&want) {
                    prop_assert!((g - w).abs() <= 1e-5 * w.max(1.0));
                }
            }
        }
    }
}
