//! Closest-hit ray casting over a BVH — the paper intro's motivating
//! graphics workload, included beyond the evaluated benchmark set to show
//! the kernel abstraction carries to ray tracing unchanged.
//!
//! Standard BVH traversal: prune a subtree when the ray misses its box or
//! the box entry distance already exceeds the best hit; visit the nearer
//! child first (guided, two call sets — like the packet tracers the paper
//! cites \[5\], the call sets only reorder the search, so the kernel carries
//! the §4.3 equivalence annotation and lockstep applies — the “per-packet
//! stack” of Günther et al. is exactly a per-warp rope stack).

use gts_runtime::{Child, ChildBuf, TraversalKernel, VisitOutcome};
use gts_trees::bvh::{Bvh, Triangle};
use gts_trees::layout::NodeBytes;
use gts_trees::{Aabb, NodeId, PointN};

/// A ray and its closest hit so far.
#[derive(Debug, Clone, PartialEq)]
pub struct RayPoint {
    /// Origin.
    pub orig: PointN<3>,
    /// Direction (need not be normalized).
    pub dir: PointN<3>,
    /// Closest hit parameter `t` so far.
    pub best_t: f32,
    /// Index (in BVH triangle order) of the closest triangle, or
    /// `u32::MAX` when nothing was hit.
    pub hit: u32,
}

impl RayPoint {
    /// A fresh ray.
    pub fn new(orig: PointN<3>, dir: PointN<3>) -> Self {
        RayPoint {
            orig,
            dir,
            best_t: f32::INFINITY,
            hit: u32::MAX,
        }
    }

    /// Did the ray hit anything?
    pub fn did_hit(&self) -> bool {
        self.hit != u32::MAX
    }
}

/// Slab test: entry distance of the ray into `bbox`, or `None` on a miss.
pub fn ray_box_enter(orig: &PointN<3>, dir: &PointN<3>, bbox: &Aabb<3>) -> Option<f32> {
    let mut t0 = 0.0f32;
    let mut t1 = f32::INFINITY;
    for a in 0..3 {
        if dir[a].abs() < 1e-12 {
            if orig[a] < bbox.lo[a] || orig[a] > bbox.hi[a] {
                return None;
            }
            continue;
        }
        let inv = 1.0 / dir[a];
        let (mut near, mut far) = ((bbox.lo[a] - orig[a]) * inv, (bbox.hi[a] - orig[a]) * inv);
        if near > far {
            std::mem::swap(&mut near, &mut far);
        }
        t0 = t0.max(near);
        t1 = t1.min(far);
        if t0 > t1 {
            return None;
        }
    }
    Some(t0)
}

/// Möller–Trumbore ray/triangle intersection; returns the hit parameter.
pub fn ray_triangle(orig: &PointN<3>, dir: &PointN<3>, tri: &Triangle) -> Option<f32> {
    let e1 = sub(&tri.b, &tri.a);
    let e2 = sub(&tri.c, &tri.a);
    let p = cross(dir, &e2);
    let det = dot(&e1, &p);
    if det.abs() < 1e-12 {
        return None;
    }
    let inv_det = 1.0 / det;
    let s = sub(orig, &tri.a);
    let u = dot(&s, &p) * inv_det;
    if !(0.0..=1.0).contains(&u) {
        return None;
    }
    let q = cross(&s, &e1);
    let v = dot(dir, &q) * inv_det;
    if v < 0.0 || u + v > 1.0 {
        return None;
    }
    let t = dot(&e2, &q) * inv_det;
    (t > 1e-6).then_some(t)
}

fn sub(a: &PointN<3>, b: &PointN<3>) -> PointN<3> {
    PointN([a[0] - b[0], a[1] - b[1], a[2] - b[2]])
}
fn dot(a: &PointN<3>, b: &PointN<3>) -> f32 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}
fn cross(a: &PointN<3>, b: &PointN<3>) -> PointN<3> {
    PointN([
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ])
}

/// The closest-hit BVH traversal kernel.
pub struct RayKernel<'t> {
    bvh: &'t Bvh,
    depth: usize,
}

impl<'t> RayKernel<'t> {
    /// Kernel over `bvh`.
    pub fn new(bvh: &'t Bvh) -> Self {
        RayKernel {
            bvh,
            depth: bvh.depth(),
        }
    }

    fn node_bbox(&self, n: NodeId) -> Aabb<3> {
        Aabb {
            lo: self.bvh.bbox_lo[n as usize],
            hi: self.bvh.bbox_hi[n as usize],
        }
    }
}

impl TraversalKernel for RayKernel<'_> {
    type Point = RayPoint;
    type Args = ();
    const MAX_KIDS: usize = 2;
    const CALL_SETS: usize = 2;
    const CALL_SETS_EQUIVALENT: bool = true;

    fn n_nodes(&self) -> usize {
        self.bvh.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.bvh.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.bvh
            .is_leaf(node)
            .then(|| (self.bvh.first[node as usize], self.bvh.count[node as usize]))
    }
    fn node_bytes(&self) -> NodeBytes {
        // hot: bbox (24) + type; cold: right child + bucket; leaf elems:
        // one triangle = 9 floats.
        NodeBytes {
            hot: 24 + 4,
            cold: 12,
            leaf_elem: 36,
        }
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) {}

    fn choose(&self, p: &RayPoint, node: NodeId, _args: ()) -> usize {
        // Near child first, by box entry distance.
        let l = ray_box_enter(&p.orig, &p.dir, &self.node_bbox(self.bvh.left(node)));
        let r = ray_box_enter(
            &p.orig,
            &p.dir,
            &self.node_bbox(self.bvh.right[node as usize]),
        );
        match (l, r) {
            (Some(tl), Some(tr)) => usize::from(tr < tl),
            (None, Some(_)) => 1,
            _ => 0,
        }
    }

    fn visit(
        &self,
        p: &mut RayPoint,
        node: NodeId,
        _args: (),
        forced: Option<usize>,
        kids: &mut ChildBuf<()>,
    ) -> VisitOutcome {
        match ray_box_enter(&p.orig, &p.dir, &self.node_bbox(node)) {
            None => return VisitOutcome::Truncated,
            Some(t_enter) if t_enter > p.best_t => return VisitOutcome::Truncated,
            Some(_) => {}
        }
        if self.bvh.is_leaf(node) {
            let (tris, base) = self.bvh.leaf_triangles(node);
            for (k, tri) in tris.iter().enumerate() {
                if let Some(t) = ray_triangle(&p.orig, &p.dir, tri) {
                    if t < p.best_t {
                        p.best_t = t;
                        p.hit = base + k as u32;
                    }
                }
            }
            return VisitOutcome::Leaf;
        }
        let set = forced.unwrap_or_else(|| self.choose(p, node, ()));
        let l = Child {
            node: self.bvh.left(node),
            args: (),
        };
        let r = Child {
            node: self.bvh.right[node as usize],
            args: (),
        };
        if set == 0 {
            kids.push(l);
            kids.push(r);
        } else {
            kids.push(r);
            kids.push(l);
        }
        VisitOutcome::Descended { call_set: set }
    }

    fn visit_insts(&self) -> u64 {
        18 // slab test
    }
    fn leaf_elem_insts(&self) -> u64 {
        30 // Möller–Trumbore
    }
}

/// Brute-force closest hit, the oracle for tests.
pub fn closest_hit_exact(tris: &[Triangle], orig: &PointN<3>, dir: &PointN<3>) -> (f32, u32) {
    let mut best = (f32::INFINITY, u32::MAX);
    for (i, tri) in tris.iter().enumerate() {
        if let Some(t) = ray_triangle(orig, dir, tri) {
            if t < best.0 {
                best = (t, i as u32);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_runtime::cpu;
    use gts_runtime::gpu::{autoropes, lockstep, GpuConfig};
    use rand::{Rng, SeedableRng};

    fn scene(n: usize, seed: u64) -> Vec<Triangle> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = PointN(std::array::from_fn(|_| rng.gen_range(-5.0f32..5.0)));
                Triangle {
                    a: base,
                    b: PointN([base[0] + rng.gen_range(0.1f32..0.8), base[1], base[2]]),
                    c: PointN([base[0], base[1] + rng.gen_range(0.1f32..0.8), base[2]]),
                }
            })
            .collect()
    }

    fn camera_rays(n: usize) -> Vec<RayPoint> {
        // Coherent grid of rays from a camera in front of the scene.
        let side = (n as f32).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let (x, y) = (i % side, i / side);
                let u = (x as f32 / side as f32) * 2.0 - 1.0;
                let v = (y as f32 / side as f32) * 2.0 - 1.0;
                RayPoint::new(PointN([0.0, 0.0, -20.0]), PointN([u * 6.0, v * 6.0, 20.0]))
            })
            .collect()
    }

    #[test]
    fn slab_test_basics() {
        let b = Aabb {
            lo: PointN([0.0, 0.0, 0.0]),
            hi: PointN([1.0, 1.0, 1.0]),
        };
        let hit = ray_box_enter(&PointN([-1.0, 0.5, 0.5]), &PointN([1.0, 0.0, 0.0]), &b);
        assert_eq!(hit, Some(1.0));
        assert!(ray_box_enter(&PointN([-1.0, 2.0, 0.5]), &PointN([1.0, 0.0, 0.0]), &b).is_none());
        // Origin inside the box: entry at 0.
        assert_eq!(
            ray_box_enter(&PointN([0.5, 0.5, 0.5]), &PointN([1.0, 0.0, 0.0]), &b),
            Some(0.0)
        );
    }

    #[test]
    fn moller_trumbore_hits_and_misses() {
        let tri = Triangle {
            a: PointN([0.0, 0.0, 1.0]),
            b: PointN([1.0, 0.0, 1.0]),
            c: PointN([0.0, 1.0, 1.0]),
        };
        let t = ray_triangle(&PointN([0.2, 0.2, 0.0]), &PointN([0.0, 0.0, 1.0]), &tri);
        assert_eq!(t, Some(1.0));
        // Outside the triangle.
        assert!(ray_triangle(&PointN([0.9, 0.9, 0.0]), &PointN([0.0, 0.0, 1.0]), &tri).is_none());
        // Behind the origin.
        assert!(ray_triangle(&PointN([0.2, 0.2, 2.0]), &PointN([0.0, 0.0, 1.0]), &tri).is_none());
    }

    #[test]
    fn traversal_matches_brute_force() {
        let tris = scene(400, 71);
        let bvh = Bvh::build(&tris, 4);
        bvh.validate().unwrap();
        let kernel = RayKernel::new(&bvh);
        let mut rays = camera_rays(300);
        cpu::run_sequential(&kernel, &mut rays);
        for (i, r) in rays.iter().enumerate() {
            let (t, id) = closest_hit_exact(&bvh.triangles, &r.orig, &r.dir);
            assert_eq!(r.hit, id, "ray {i} hit id");
            if id != u32::MAX {
                assert!(
                    (r.best_t - t).abs() <= 1e-4 * t.max(1.0),
                    "ray {i}: {} vs {t}",
                    r.best_t
                );
            }
        }
    }

    #[test]
    fn gpu_executors_agree_on_hits() {
        let tris = scene(300, 72);
        let bvh = Bvh::build(&tris, 4);
        let kernel = RayKernel::new(&bvh);
        let cfg = GpuConfig::default();
        let mut a = camera_rays(200);
        let mut l = camera_rays(200);
        autoropes::run(&kernel, &mut a, &cfg);
        lockstep::run(&kernel, &mut l, &cfg);
        for (i, (x, y)) in a.iter().zip(&l).enumerate() {
            assert_eq!(x.hit, y.hit, "ray {i}");
        }
    }

    #[test]
    fn ray_coherence_drives_lockstep_cost() {
        // Camera rays are naturally sorted (adjacent rays, adjacent
        // paths): the packet-tracing observation [5]. Coherence must cut
        // the lockstep union, and lockstep's broadcast loads must deliver
        // more useful bytes per bus byte than per-lane scattered loads.
        let tris = scene(1500, 73);
        let bvh = Bvh::build(&tris, 4);
        let kernel = RayKernel::new(&bvh);
        let cfg = GpuConfig::default();

        let mut coherent = camera_rays(2048);
        let l_coherent = lockstep::run(&kernel, &mut coherent, &cfg);
        let mut scattered = camera_rays(2048);
        gts_points::sort::shuffle(&mut scattered, 5);
        let l_scattered = lockstep::run(&kernel, &mut scattered, &cfg);
        assert!(
            l_coherent.ms() < l_scattered.ms(),
            "coherent {:.3} ms should beat shuffled {:.3} ms under lockstep",
            l_coherent.ms(),
            l_scattered.ms()
        );

        let mut coherent2 = camera_rays(2048);
        let n = autoropes::run(&kernel, &mut coherent2, &cfg);
        assert!(
            l_coherent.launch.counters.coalescing_efficiency()
                > n.launch.counters.coalescing_efficiency(),
            "lockstep should coalesce node loads better"
        );
    }
}
