//! A bounded set of the k smallest squared distances, the per-point state
//! of the kNN benchmark.
//!
//! Stored as a sorted insertion list: k is small (the paper's kNN uses a
//! handful of neighbors), so `O(k)` insertion into a fixed array beats a
//! heap on both CPU and (modeled) GPU — no dynamic allocation per visit.

/// The k smallest squared distances seen so far, ascending, each with the
/// index of the point that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct KBest {
    k: usize,
    d2: Vec<f32>,
    ids: Vec<u32>,
}

impl KBest {
    /// Empty set of capacity `k`.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "kNN with k = 0");
        KBest {
            k,
            d2: Vec::with_capacity(k),
            ids: Vec::with_capacity(k),
        }
    }

    /// A zero-capacity set that is permanently full with a `-inf` bound:
    /// it rejects every offer and prunes every subtree. Fused traversals
    /// use this as the *inert* kNN constituent for lanes that did not ask
    /// for kNN — it never updates and never widens the union prune bound.
    pub fn inactive() -> Self {
        KBest {
            k: 0,
            d2: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbors collected so far.
    pub fn len(&self) -> usize {
        self.d2.len()
    }

    /// Nothing collected yet?
    pub fn is_empty(&self) -> bool {
        self.d2.is_empty()
    }

    /// Has the set reached capacity? Pruning is only sound once it has.
    pub fn full(&self) -> bool {
        self.d2.len() == self.k
    }

    /// Current pruning bound: the k-th best squared distance, or infinity
    /// while the set is not yet full. An [`inactive`](Self::inactive) set
    /// reports `-inf` (always prune).
    pub fn bound(&self) -> f32 {
        if self.full() {
            self.d2.last().copied().unwrap_or(f32::NEG_INFINITY)
        } else {
            f32::INFINITY
        }
    }

    /// Offer a squared distance from point `id`; keeps the k smallest.
    /// Returns whether it was admitted.
    pub fn offer(&mut self, d2: f32, id: u32) -> bool {
        if self.full() && d2 >= self.bound() {
            return false;
        }
        let pos = self.d2.partition_point(|&x| x <= d2);
        self.d2.insert(pos, d2);
        self.ids.insert(pos, id);
        if self.d2.len() > self.k {
            self.d2.pop();
            self.ids.pop();
        }
        true
    }

    /// The collected squared distances, ascending.
    pub fn distances(&self) -> &[f32] {
        &self.d2
    }

    /// The neighbor indices, aligned with [`KBest::distances`]. Indices
    /// refer to the tree's (reordered) point array; map back through the
    /// tree's `perm` for original dataset indices.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest_sorted_with_ids() {
        let mut kb = KBest::new(3);
        for (i, d) in [5.0, 1.0, 9.0, 3.0, 2.0].into_iter().enumerate() {
            kb.offer(d, i as u32);
        }
        assert_eq!(kb.distances(), &[1.0, 2.0, 3.0]);
        assert_eq!(kb.ids(), &[1, 4, 3]);
        assert_eq!(kb.bound(), 3.0);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut kb = KBest::new(2);
        assert_eq!(kb.bound(), f32::INFINITY);
        kb.offer(4.0, 0);
        assert_eq!(kb.bound(), f32::INFINITY);
        kb.offer(7.0, 1);
        assert_eq!(kb.bound(), 7.0);
        assert!(kb.full());
    }

    #[test]
    fn rejects_worse_than_bound() {
        let mut kb = KBest::new(1);
        assert!(kb.offer(2.0, 0));
        assert!(!kb.offer(3.0, 1));
        assert!(kb.offer(1.0, 2));
        assert_eq!(kb.distances(), &[1.0]);
        assert_eq!(kb.ids(), &[2]);
    }

    #[test]
    fn duplicates_allowed() {
        let mut kb = KBest::new(3);
        for i in 0..5 {
            kb.offer(1.0, i);
        }
        assert_eq!(kb.distances(), &[1.0, 1.0, 1.0]);
        // First-come kept on ties.
        assert_eq!(kb.ids(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_k_rejected() {
        let _ = KBest::new(0);
    }

    #[test]
    fn inactive_rejects_everything_and_prunes_always() {
        let mut kb = KBest::inactive();
        assert!(kb.full());
        assert_eq!(kb.bound(), f32::NEG_INFINITY);
        assert!(!kb.offer(0.0, 0));
        assert!(kb.is_empty());
        assert_eq!(kb.bound(), f32::NEG_INFINITY);
    }

    #[test]
    fn prefix_property_smaller_k_is_a_prefix_of_larger_k() {
        // The fused kernel serves several k's from one k_max-capacity set
        // by taking prefixes; that is sound because KBest(j) equals the j
        // smallest offers under (d2, arrival) order — including ties.
        let offers = [
            (2.0, 0),
            (1.0, 1),
            (2.0, 2),
            (0.5, 3),
            (1.0, 4),
            (3.0, 5),
            (0.5, 6),
        ];
        let mut big = KBest::new(5);
        for &(d, i) in &offers {
            big.offer(d, i);
        }
        for j in 1..=5usize {
            let mut small = KBest::new(j);
            for &(d, i) in &offers {
                small.offer(d, i);
            }
            let n = small.len();
            assert_eq!(small.distances(), &big.distances()[..n], "k = {j}");
            assert_eq!(small.ids(), &big.ids()[..n], "k = {j}");
        }
    }
}
