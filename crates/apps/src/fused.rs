//! The fused multi-op point benchmark: one kd-tree walk answering NN, kNN
//! and point-correlation for the same query position (Sakka et al.'s
//! traversal fusion, applied to the paper's three point kernels).
//!
//! The composition is built from [`gts_runtime::FusedKernel`]'s generic
//! union-admission combinator:
//!
//! * **NN** keeps its own `(best_d2, best_idx)` register pair with the
//!   distinct-position rule (`d2 > 0`). A k-best heap cannot subsume it in
//!   general — zero-distance duplicates of the query could fill the heap
//!   and evict the nearest *distinct* point — so the register pair stays.
//! * **kNN** carries one [`KBest`] sized to the *largest* k requested at
//!   the lane. Smaller k answers are prefixes of the heap: `KBest(j)` holds
//!   exactly the j smallest offers under `(d2, arrival)` order, so the
//!   first j entries of the k_max heap are bit-identical to a solo
//!   `KBest(j)` run (pinned in `kbest`'s tests).
//! * **PC** generalizes to [`MultiPcPoint`]: per-lane radius slots (the
//!   lane may serve several PC radii at once), counted in one pass per
//!   leaf point, admitted under the largest slot radius.
//!
//! A lane opts out of a constituent with *inert* state — `best_d2 = -inf`
//! for NN, [`KBest::inactive`] for kNN, zero slots for PC — which
//! truncates that constituent everywhere and never widens the union prune
//! bound. Each constituent's answer is bit-identical to its unfused
//! kernel: extra union-visited nodes satisfy `lb > bound_op` and the box
//! lower bound only grows along a descent while the op bound only shrinks,
//! so a truncated constituent stays truncated below (the
//! `NnAabbKernel`-vs-`NnKernel` argument, per constituent).

use gts_runtime::{
    Child, ChildBuf, FusedKernel, FusedPoint, FusedWaldKernel, TraversalKernel, VisitOutcome,
    WaldKernel,
};
use gts_trees::layout::NodeBytes;
use gts_trees::{Aabb, KdTree, LbKdTree, NodeId, PointN};

use crate::kbest::KBest;
use crate::knn::{KnnKernel, KnnPoint};
use crate::nn::{NnAabbKernel, NnPoint};
use crate::wald::{WaldKnnKernel, WaldNnKernel};

/// One point-correlation radius served by a fused lane.
#[derive(Debug, Clone, PartialEq)]
pub struct PcSlot {
    /// Squared radius (computed as `radius * radius`, matching
    /// [`crate::pc::PcKernel`] bit-for-bit).
    pub radius2: f32,
    /// Points found within this radius so far.
    pub count: u32,
}

/// Traversal state of the multi-radius PC constituent: like
/// [`crate::pc::PcPoint`] but with the radii per lane instead of per
/// kernel, so one fused batch can mix different radii (and lanes that
/// asked for no PC at all).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPcPoint<const D: usize> {
    /// Query position.
    pub pos: PointN<D>,
    /// Union admission bound: the largest slot radius², or `-inf` when the
    /// lane has no PC slots (inert — prunes everywhere).
    pub max_r2: f32,
    /// The radius slots, in the order given at construction.
    pub slots: Vec<PcSlot>,
}

impl<const D: usize> MultiPcPoint<D> {
    /// Fresh lane at `pos` counting within each of `radii`.
    ///
    /// # Panics
    /// Panics on a radius that is not a finite non-negative number.
    pub fn new(pos: PointN<D>, radii: &[f32]) -> Self {
        let slots: Vec<PcSlot> = radii
            .iter()
            .map(|&radius| {
                assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
                PcSlot {
                    radius2: radius * radius,
                    count: 0,
                }
            })
            .collect();
        let max_r2 = slots
            .iter()
            .map(|s| s.radius2)
            .fold(f32::NEG_INFINITY, f32::max);
        MultiPcPoint { pos, max_r2, slots }
    }
}

/// Multi-radius point correlation over the pointer kd-tree (the rope-stack
/// and skip-walk shape of the PC constituent).
pub struct MultiPcKernel<'t, const D: usize> {
    tree: &'t KdTree<D>,
    depth: usize,
}

impl<'t, const D: usize> MultiPcKernel<'t, D> {
    /// Kernel over `tree`; the radii live in each lane's slots.
    pub fn new(tree: &'t KdTree<D>) -> Self {
        MultiPcKernel {
            tree,
            depth: tree.depth(),
        }
    }
}

impl<const D: usize> TraversalKernel for MultiPcKernel<'_, D> {
    type Point = MultiPcPoint<D>;
    type Args = ();
    const MAX_KIDS: usize = 2;
    const CALL_SETS: usize = 1;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        self.tree.is_leaf(node)
    }
    fn leaf_range(&self, node: NodeId) -> Option<(u32, u32)> {
        self.tree.is_leaf(node).then(|| {
            (
                self.tree.first[node as usize],
                self.tree.count[node as usize],
            )
        })
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes::kd(D)
    }
    fn max_depth(&self) -> usize {
        self.depth
    }
    fn root_args(&self) {}

    fn visit(
        &self,
        p: &mut MultiPcPoint<D>,
        node: NodeId,
        _args: (),
        _forced: Option<usize>,
        kids: &mut ChildBuf<()>,
    ) -> VisitOutcome {
        let b = Aabb {
            lo: self.tree.bbox_lo[node as usize],
            hi: self.tree.bbox_hi[node as usize],
        };
        // `can_correlate` under the union of the lane's radii. An inert
        // lane carries `max_r2 = -inf`, so this truncates everywhere;
        // neither side is ever NaN.
        if b.dist2_to(&p.pos) > p.max_r2 {
            return VisitOutcome::Truncated;
        }
        if self.tree.is_leaf(node) {
            for q in self.tree.leaf_points(node) {
                let d2 = q.dist2(&p.pos);
                for slot in &mut p.slots {
                    if d2 <= slot.radius2 {
                        slot.count += 1;
                    }
                }
            }
            return VisitOutcome::Leaf;
        }
        kids.push(Child {
            node: self.tree.left(node),
            args: (),
        });
        kids.push(Child {
            node: self.tree.right[node as usize],
            args: (),
        });
        VisitOutcome::Descended { call_set: 0 }
    }
}

/// Multi-radius point correlation over the left-balanced implicit tree.
pub struct WaldMultiPcKernel<'t, const D: usize> {
    tree: &'t LbKdTree<D>,
}

impl<'t, const D: usize> WaldMultiPcKernel<'t, D> {
    /// Kernel over `tree`; the radii live in each lane's slots.
    pub fn new(tree: &'t LbKdTree<D>) -> Self {
        WaldMultiPcKernel { tree }
    }
}

impl<const D: usize> WaldKernel for WaldMultiPcKernel<'_, D> {
    type Point = MultiPcPoint<D>;

    fn n_nodes(&self) -> usize {
        self.tree.n_nodes()
    }
    fn axis(&self, node: NodeId) -> usize {
        self.tree.split_dim[node as usize] as usize
    }
    fn split(&self, node: NodeId) -> f32 {
        self.tree.points[node as usize][self.axis(node)]
    }
    fn coord(&self, p: &MultiPcPoint<D>, axis: usize) -> f32 {
        p.pos[axis]
    }
    fn process(&self, p: &mut MultiPcPoint<D>, node: NodeId) {
        let d2 = self.tree.points[node as usize].dist2(&p.pos);
        for slot in &mut p.slots {
            if d2 <= slot.radius2 {
                slot.count += 1;
            }
        }
    }
    fn cull_d2(&self, p: &MultiPcPoint<D>) -> f32 {
        p.max_r2
    }
    fn node_bytes(&self) -> NodeBytes {
        NodeBytes {
            hot: (D as u64) * 4,
            cold: 0,
            leaf_elem: (D as u64) * 4,
        }
    }
}

/// Per-lane state of the full NN + kNN + PC fusion.
pub type FusedOpsPoint<const D: usize> =
    FusedPoint<NnPoint<D>, FusedPoint<KnnPoint<D>, MultiPcPoint<D>>>;

/// The NN + kNN + PC fusion over the pointer kd-tree. Box pruning
/// everywhere (`Args = ()`), so one kernel rides the rope-stack executors
/// *and* the stackless skip walk.
pub type FusedOpsKernel<'t, const D: usize> =
    FusedKernel<NnAabbKernel<'t, D>, FusedKernel<KnnKernel<'t, D>, MultiPcKernel<'t, D>>>;

/// The NN + kNN + PC fusion over the left-balanced implicit tree.
pub type FusedOpsWaldKernel<'t, const D: usize> = FusedWaldKernel<
    WaldNnKernel<'t, D>,
    FusedWaldKernel<WaldKnnKernel<'t, D>, WaldMultiPcKernel<'t, D>>,
>;

/// Build the fused NN + kNN + PC kernel over `tree`.
pub fn fused_ops_kernel<const D: usize>(tree: &KdTree<D>) -> FusedOpsKernel<'_, D> {
    FusedKernel::new(
        NnAabbKernel::new(tree),
        FusedKernel::new(KnnKernel::new(tree), MultiPcKernel::new(tree)),
    )
}

/// Build the fused NN + kNN + PC kernel over the left-balanced mirror.
pub fn fused_ops_wald_kernel<const D: usize>(lb: &LbKdTree<D>) -> FusedOpsWaldKernel<'_, D> {
    FusedWaldKernel::new(
        WaldNnKernel::new(lb),
        FusedWaldKernel::new(WaldKnnKernel::new(lb), WaldMultiPcKernel::new(lb)),
    )
}

/// Build one fused lane at `pos`: NN state iff `nn`, a kNN heap of
/// capacity `knn_k` (pass the largest k the lane serves; `None` for no
/// kNN), and one PC slot per radius (empty slice for no PC). Constituents
/// the lane does not ask for are inert — they never update and never
/// widen the union prune bound.
pub fn fused_ops_point<const D: usize>(
    pos: PointN<D>,
    nn: bool,
    knn_k: Option<usize>,
    pc_radii: &[f32],
) -> FusedOpsPoint<D> {
    let nn_state = if nn {
        NnPoint::new(pos)
    } else {
        NnPoint {
            pos,
            best_d2: f32::NEG_INFINITY,
            best_idx: u32::MAX,
        }
    };
    let knn_state = KnnPoint {
        pos,
        best: match knn_k {
            Some(k) => KBest::new(k),
            None => KBest::inactive(),
        },
    };
    FusedPoint::new(
        nn_state,
        FusedPoint::new(knn_state, MultiPcPoint::new(pos, pc_radii)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnPoint;
    use crate::nn::NnKernel;
    use crate::pc::{PcKernel, PcPoint};
    use gts_points::gen::uniform;
    use gts_runtime::gpu::{autoropes, lockstep, stackless, GpuConfig};
    use gts_trees::SplitPolicy;

    fn setup(n: usize, seed: u64) -> (Vec<PointN<3>>, KdTree<3>, LbKdTree<3>) {
        let pts = uniform::<3>(n, seed);
        let tree = KdTree::build(&pts, 8, SplitPolicy::MedianCycle);
        let lb = LbKdTree::build(&tree.points);
        (pts, tree, lb)
    }

    #[test]
    fn multi_pc_slots_match_single_radius_kernels_bitwise() {
        let (pts, tree, _) = setup(200, 71);
        let radii = [0.1f32, 0.3, 0.6];
        let multi = MultiPcKernel::new(&tree);
        let cfg = GpuConfig::default();
        let mut lanes: Vec<MultiPcPoint<3>> =
            pts.iter().map(|&p| MultiPcPoint::new(p, &radii)).collect();
        autoropes::run(&multi, &mut lanes, &cfg);
        for (slot_i, &radius) in radii.iter().enumerate() {
            let single = PcKernel::new(&tree, radius);
            let mut solo: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
            autoropes::run(&single, &mut solo, &cfg);
            for (lane, s) in lanes.iter().zip(&solo) {
                assert_eq!(lane.slots[slot_i].count, s.count, "radius {radius}");
            }
        }
    }

    #[test]
    fn fused_ops_match_solo_kernels_bitwise_on_every_executor() {
        let (pts, tree, lb) = setup(250, 72);
        let cfg = GpuConfig::default();
        let k = 4usize;
        let radius = 0.3f32;

        // Solo baselines (autoropes; solo kernels agree across executors
        // per their own tests).
        let mut nn_solo: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
        autoropes::run(&NnKernel::new(&tree), &mut nn_solo, &cfg);
        let mut knn_solo: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, k)).collect();
        autoropes::run(&KnnKernel::new(&tree), &mut knn_solo, &cfg);
        let mut pc_solo: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        autoropes::run(&PcKernel::new(&tree, radius), &mut pc_solo, &cfg);

        let kernel = fused_ops_kernel(&tree);
        let wald = fused_ops_wald_kernel(&lb);
        let make = || -> Vec<FusedOpsPoint<3>> {
            pts.iter()
                .map(|&p| fused_ops_point(p, true, Some(k), &[radius]))
                .collect()
        };
        let check = |lanes: &[FusedOpsPoint<3>], label: &str| {
            for (i, lane) in lanes.iter().enumerate() {
                assert_eq!(lane.a.best_d2, nn_solo[i].best_d2, "{label} nn {i}");
                assert_eq!(lane.a.best_idx, nn_solo[i].best_idx, "{label} nn {i}");
                assert_eq!(
                    lane.b.a.best.distances(),
                    knn_solo[i].best.distances(),
                    "{label} knn {i}"
                );
                assert_eq!(
                    lane.b.a.best.ids(),
                    knn_solo[i].best.ids(),
                    "{label} knn {i}"
                );
                assert_eq!(lane.b.b.slots[0].count, pc_solo[i].count, "{label} pc {i}");
            }
        };

        let mut a = make();
        autoropes::run(&kernel, &mut a, &cfg);
        check(&a, "autoropes");
        let mut l = make();
        lockstep::run(&kernel, &mut l, &cfg);
        check(&l, "lockstep");
        let mut s = make();
        stackless::run_skip(&kernel, &mut s, &tree.skip, &cfg);
        check(&s, "skip");
        let mut w = make();
        let wald_lanes = {
            stackless::run_wald(&wald, &mut w, &cfg);
            &w
        };
        // Wald kernels record dataset-space ids through the lb-tree perm;
        // the rope-stack solo ids are tree-internal. Compare distances and
        // mapped ids.
        for (i, lane) in wald_lanes.iter().enumerate() {
            assert_eq!(lane.a.best_d2, nn_solo[i].best_d2, "wald nn {i}");
            assert_eq!(
                lane.a.best_idx, nn_solo[i].best_idx,
                "wald nn id {i} (lb built over tree.points: same space)"
            );
            assert_eq!(
                lane.b.a.best.distances(),
                knn_solo[i].best.distances(),
                "wald knn {i}"
            );
            assert_eq!(lane.b.b.slots[0].count, pc_solo[i].count, "wald pc {i}");
        }
    }

    #[test]
    fn fused_walk_visits_fewer_nodes_than_the_sum_of_solo_walks() {
        let (pts, tree, _) = setup(600, 73);
        let cfg = GpuConfig::default();
        let k = 8usize;
        let radius = 0.25f32;

        let solo_visits = |run: &dyn Fn() -> u64| run();
        let nn_visits = solo_visits(&|| {
            let mut q: Vec<NnPoint<3>> = pts.iter().map(|&p| NnPoint::new(p)).collect();
            let r = autoropes::run(&NnAabbKernel::new(&tree), &mut q, &cfg);
            r.stats.per_point_nodes.iter().map(|&v| v as u64).sum()
        });
        let knn_visits = solo_visits(&|| {
            let mut q: Vec<KnnPoint<3>> = pts.iter().map(|&p| KnnPoint::new(p, k)).collect();
            let r = autoropes::run(&KnnKernel::new(&tree), &mut q, &cfg);
            r.stats.per_point_nodes.iter().map(|&v| v as u64).sum()
        });
        let pc_visits = solo_visits(&|| {
            let mut q: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
            let r = autoropes::run(&PcKernel::new(&tree, radius), &mut q, &cfg);
            r.stats.per_point_nodes.iter().map(|&v| v as u64).sum()
        });

        let kernel = fused_ops_kernel(&tree);
        let mut lanes: Vec<FusedOpsPoint<3>> = pts
            .iter()
            .map(|&p| fused_ops_point(p, true, Some(k), &[radius]))
            .collect();
        let rep = autoropes::run(&kernel, &mut lanes, &cfg);
        let fused_visits: u64 = rep.stats.per_point_nodes.iter().map(|&v| v as u64).sum();

        let unfused = nn_visits + knn_visits + pc_visits;
        assert!(
            (fused_visits as f64) < 0.75 * unfused as f64,
            "fused {fused_visits} vs unfused sum {unfused}"
        );
    }

    #[test]
    fn inert_lanes_answer_only_what_they_asked_for() {
        let (pts, tree, _) = setup(120, 74);
        let kernel = fused_ops_kernel(&tree);
        let cfg = GpuConfig::default();
        // PC-only lanes: NN and kNN stay inert.
        let mut lanes: Vec<FusedOpsPoint<3>> = pts
            .iter()
            .map(|&p| fused_ops_point(p, false, None, &[0.4]))
            .collect();
        autoropes::run(&kernel, &mut lanes, &cfg);
        let mut solo: Vec<PcPoint<3>> = pts.iter().map(|&p| PcPoint::new(p)).collect();
        autoropes::run(&PcKernel::new(&tree, 0.4), &mut solo, &cfg);
        for (lane, s) in lanes.iter().zip(&solo) {
            assert_eq!(lane.b.b.slots[0].count, s.count);
            assert_eq!(lane.a.best_idx, u32::MAX, "inert NN untouched");
            assert!(lane.b.a.best.is_empty(), "inert kNN untouched");
        }
    }

    #[test]
    fn no_op_lane_truncates_immediately() {
        let (pts, tree, _) = setup(64, 75);
        let kernel = fused_ops_kernel(&tree);
        let mut lanes: Vec<FusedOpsPoint<3>> = vec![fused_ops_point(pts[0], false, None, &[])];
        let rep = autoropes::run(&kernel, &mut lanes, &GpuConfig::default());
        assert_eq!(rep.stats.per_point_nodes[0], 1, "root visit only");
    }
}
