//! The per-warp event recorder and the launch-level accumulator.
//!
//! Executors in `gts-runtime` drive real computation lane-by-lane; every
//! warp step they perform is mirrored into a [`WarpSim`], which prices the
//! step's events via the [`CostModel`] and tallies [`SimCounters`]. When a
//! warp finishes, its counters fold into a [`KernelLaunch`]; when all warps
//! have run, [`KernelLaunch::finish`] applies the SM scheduling model to
//! produce the device-level execution time.

use crate::cost::CostModel;
use crate::counters::SimCounters;
use crate::l2::{L2Cache, L2Config};
use crate::memory::{coalesce, touched_segments, AddressMap, MemSpace, RegionId, WarpAccess};
use crate::sched::{LaunchReport, Schedule};
use crate::{DeviceConfig, WarpMask};

/// Records the events of a single warp's execution.
///
/// A `WarpSim` borrows the launch's [`AddressMap`] so region lookups stay
/// cheap; it owns its own counters so independent warps can be simulated on
/// host threads concurrently and folded back in warp order (keeping totals
/// deterministic).
pub struct WarpSim<'a> {
    cost: &'a CostModel,
    map: &'a AddressMap,
    segment_bytes: u64,
    l2: Option<(L2Cache, L2Config)>,
    /// Event tallies for this warp so far.
    pub counters: SimCounters,
}

impl<'a> WarpSim<'a> {
    /// Start recording a warp against `map` with prices from `cost`.
    pub fn new(map: &'a AddressMap, cost: &'a CostModel, segment_bytes: u64) -> Self {
        WarpSim {
            cost,
            map,
            segment_bytes,
            l2: None,
            counters: SimCounters::new(),
        }
    }

    /// Like [`WarpSim::new`], with this warp's slice of the optional L2
    /// cache model (see [`crate::l2`]).
    pub fn with_l2(
        map: &'a AddressMap,
        cost: &'a CostModel,
        segment_bytes: u64,
        l2: Option<&L2Config>,
    ) -> Self {
        let mut sim = Self::new(map, cost, segment_bytes);
        sim.l2 = l2.map(|cfg| (L2Cache::new(cfg.slice_lines(segment_bytes)), cfg.clone()));
        sim
    }

    /// Issue one warp instruction bundle of `compute_insts` ALU ops.
    /// Every traversal-loop iteration calls this once; masked-out lanes
    /// still pay (SIMT issue is warp-wide).
    pub fn step(&mut self, compute_insts: u64) {
        self.counters.warp_steps += 1;
        self.counters.compute_insts += compute_insts;
        self.counters.issue_cycles += self.cost.issue_cycles(compute_insts);
    }

    /// Record a memory request, coalescing it into transactions.
    pub fn access(&mut self, region: RegionId, access: &WarpAccess) {
        let out = coalesce(access, self.segment_bytes);
        if out.transactions == 0 {
            return;
        }
        let name = &self.map.region(region).name;
        *self
            .counters
            .per_region_transactions
            .entry(name.clone())
            .or_insert(0) += out.transactions;
        match access.space {
            MemSpace::Global => match &mut self.l2 {
                Some((cache, l2_cfg)) => {
                    // Classify each touched segment as an L2 hit or a DRAM
                    // transaction; hits skip the bus entirely.
                    let mut misses = 0u64;
                    let mut hits = 0u64;
                    for seg in touched_segments(access, self.segment_bytes) {
                        if cache.access(seg) {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                    }
                    self.counters.l2_hits += hits;
                    self.counters.global_transactions += misses;
                    self.counters.global_bus_bytes += misses * self.segment_bytes;
                    self.counters.global_useful_bytes += out.useful_bytes;
                    self.counters.stall_cycles +=
                        self.cost.global_stall(misses) + l2_cfg.hit_stall(hits);
                }
                None => {
                    self.counters.global_transactions += out.transactions;
                    self.counters.global_bus_bytes += out.bus_bytes;
                    self.counters.global_useful_bytes += out.useful_bytes;
                    self.counters.stall_cycles += self.cost.global_stall(out.transactions);
                }
            },
            MemSpace::Shared => {
                self.counters.shared_accesses += out.transactions;
                self.counters.stall_cycles += self.cost.shared_stall(out.transactions);
            }
        }
    }

    /// Convenience: per-lane load of `region[index(lane)]` for lanes in
    /// `mask` (non-lockstep pattern: each lane at its own tree node).
    pub fn load(&mut self, region: RegionId, mask: WarpMask, index: impl Fn(usize) -> u64) {
        let acc = WarpAccess::per_lane(self.map, region, mask, index);
        self.access(region, &acc);
    }

    /// Convenience: broadcast load of `region[index]` to all lanes in
    /// `mask` (lockstep pattern: one transaction).
    pub fn load_broadcast(&mut self, region: RegionId, mask: WarpMask, index: u64) {
        let acc = WarpAccess::broadcast(self.map, region, mask, index);
        self.access(region, &acc);
    }

    /// Record a divergent branch: the warp's lanes split over `sides`
    /// distinct control paths, so `sides - 1` replays are issued.
    pub fn diverge(&mut self, sides: u64) {
        if sides > 1 {
            let replays = sides - 1;
            self.counters.divergent_replays += replays;
            self.counters.issue_cycles += self.cost.divergence_replay * replays as f64;
        }
    }

    /// Record a call/return pair (naïve recursive baseline only).
    pub fn call(&mut self) {
        self.counters.calls += 1;
        self.counters.issue_cycles += self.cost.call_overhead;
    }

    /// Record a node visit performed by `active_lanes` lanes at once.
    /// `node_visits` counts lane-visits (paper Table 1's Avg. # Nodes);
    /// `warp_node_visits` counts warp-visits (Table 2's work-expansion
    /// numerator).
    pub fn visit_node(&mut self, active_lanes: u64) {
        self.counters.node_visits += active_lanes;
        self.counters.warp_node_visits += 1;
    }
}

/// Accumulates per-warp results for one kernel launch.
#[derive(Debug, Clone)]
pub struct KernelLaunch {
    /// The simulated device.
    pub device: DeviceConfig,
    /// Cycle prices used by all warps of this launch.
    pub cost: CostModel,
    /// Per-warp (issue, stall) cycle pairs in warp order.
    warp_cycles: Vec<(f64, f64)>,
    /// Launch-wide event totals.
    pub totals: SimCounters,
}

impl KernelLaunch {
    /// New empty launch on `device` with `cost` prices.
    pub fn new(device: DeviceConfig, cost: CostModel) -> Self {
        KernelLaunch {
            device,
            cost,
            warp_cycles: Vec::new(),
            totals: SimCounters::new(),
        }
    }

    /// Fold a finished warp's counters into the launch.
    pub fn absorb(&mut self, warp: SimCounters) {
        self.warp_cycles
            .push((warp.issue_cycles, warp.stall_cycles));
        self.totals.merge(&warp);
    }

    /// Number of warps absorbed so far.
    pub fn warps(&self) -> usize {
        self.warp_cycles.len()
    }

    /// Apply the SM scheduling model and produce the launch report.
    /// `shared_bytes_per_warp` is the shared-memory footprint each warp
    /// pins (0 when stacks live in global memory), which caps occupancy.
    pub fn finish(self, shared_bytes_per_warp: usize) -> LaunchReport {
        Schedule::run(
            &self.device,
            &self.cost,
            &self.warp_cycles,
            shared_bytes_per_warp,
            self.totals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemSpace;

    fn setup() -> (AddressMap, CostModel) {
        let mut map = AddressMap::new();
        map.alloc("nodes", MemSpace::Global, 1000, 16);
        (map, CostModel::unit())
    }

    #[test]
    fn step_accumulates_issue() {
        let (map, cost) = setup();
        let mut w = WarpSim::new(&map, &cost, 128);
        w.step(3);
        w.step(0);
        assert_eq!(w.counters.warp_steps, 2);
        assert_eq!(w.counters.compute_insts, 3);
        // unit model: issue_cycles = (1+3) + (1+0)
        assert_eq!(w.counters.issue_cycles, 5.0);
    }

    #[test]
    fn broadcast_vs_scattered_transactions() {
        let (map, cost) = setup();
        let region = RegionId(0);
        let mut w = WarpSim::new(&map, &cost, 128);
        w.load_broadcast(region, WarpMask::ALL, 5);
        assert_eq!(w.counters.global_transactions, 1);
        let before = w.counters.stall_cycles;
        // Scatter: every lane 8 elements (128 B) apart → 32 segments.
        w.load(region, WarpMask::ALL, |l| (l as u64) * 8);
        assert_eq!(w.counters.global_transactions, 33);
        assert!(w.counters.stall_cycles > before);
        assert_eq!(w.counters.per_region_transactions["nodes"], 33);
    }

    #[test]
    fn divergence_counts_replays() {
        let (map, cost) = setup();
        let mut w = WarpSim::new(&map, &cost, 128);
        w.diverge(1); // convergent: free
        assert_eq!(w.counters.divergent_replays, 0);
        w.diverge(3);
        assert_eq!(w.counters.divergent_replays, 2);
    }

    #[test]
    fn visit_node_tracks_both_granularities() {
        let (map, cost) = setup();
        let mut w = WarpSim::new(&map, &cost, 128);
        w.visit_node(32);
        w.visit_node(1);
        assert_eq!(w.counters.node_visits, 33);
        assert_eq!(w.counters.warp_node_visits, 2);
    }

    #[test]
    fn l2_hits_skip_the_bus() {
        let (map, cost) = setup();
        let region = RegionId(0);
        let l2 = crate::l2::L2Config::fermi();
        let mut w = WarpSim::with_l2(&map, &cost, 128, Some(&l2));
        // First broadcast: miss (1 transaction); repeat: hit (0 bus bytes).
        w.load_broadcast(region, WarpMask::ALL, 3);
        assert_eq!(w.counters.global_transactions, 1);
        assert_eq!(w.counters.l2_hits, 0);
        w.load_broadcast(region, WarpMask::ALL, 3);
        assert_eq!(w.counters.global_transactions, 1, "second touch must hit");
        assert_eq!(w.counters.l2_hits, 1);
        assert_eq!(w.counters.global_bus_bytes, 128);
    }

    #[test]
    fn launch_absorbs_in_order() {
        let (map, cost) = setup();
        let mut launch = KernelLaunch::new(DeviceConfig::tiny(), cost.clone());
        for i in 0..3 {
            let mut w = WarpSim::new(&map, &cost, 128);
            w.step(i);
            launch.absorb(w.counters);
        }
        assert_eq!(launch.warps(), 3);
        assert_eq!(launch.totals.warp_steps, 3);
        assert_eq!(launch.totals.compute_insts, 1 + 2);
    }
}
