//! # gts-sim — a deterministic SIMT GPU simulator
//!
//! This crate stands in for the nVidia Tesla C2070 used in the paper
//! *“General Transformations for GPU Execution of Tree Traversals”*
//! (Goldfarb, Jo & Kulkarni, SC 2013). No GPU hardware is assumed; instead
//! the crate models the aspects of a SIMT machine that the paper's
//! transformations target:
//!
//! * **Warps and lane masks** ([`mask::WarpMask`]) — 32 lanes execute each
//!   instruction together; inactive lanes are masked out but still occupy
//!   issue slots. Warp-wide votes (`ballot`, `warp_and`) are provided, as
//!   used by the lockstep transformation (paper §4.2).
//! * **Memory coalescing** ([`memory`]) — global-memory accesses from the
//!   lanes of a warp are merged into 128-byte segment transactions exactly
//!   as described in paper §2.2; scattered accesses serialize into many
//!   transactions, broadcast accesses collapse into one.
//! * **Shared memory** — a small, fast, per-SM scratchpad; using more of it
//!   per block reduces occupancy (paper §2.2), which the scheduler models.
//! * **SM scheduling and latency hiding** ([`sched`]) — warps are assigned
//!   round-robin to SMs; memory stalls overlap with other warps' execution
//!   up to the occupancy limit.
//! * **A calibrated cost model** ([`cost::CostModel`]) — converts counted
//!   events (issued warp steps, memory transactions, divergent replays)
//!   into cycles and modeled milliseconds. Absolute times are model
//!   artifacts; *relative orderings* are the reproduction target (see
//!   DESIGN.md §5.2).
//!
//! The simulator is *functional + cost-counting*: executors (in
//! `gts-runtime`) perform real computation lane-by-lane and report the
//! memory traffic of each warp step to a [`engine::WarpSim`], which
//! accumulates [`counters::SimCounters`]. The [`sched::Schedule`] then
//! folds per-warp cycle totals into a device-level execution time.

//! ## Example: coalescing in action
//!
//! ```
//! use gts_sim::{AddressMap, CostModel, MemSpace, WarpMask, WarpSim};
//!
//! let mut map = AddressMap::new();
//! let nodes = map.alloc("tree.nodes0", MemSpace::Global, 10_000, 16);
//! let cost = CostModel::fermi();
//! let mut warp = WarpSim::new(&map, &cost, 128);
//!
//! // Lockstep pattern: all 32 lanes read the same node — 1 transaction.
//! warp.load_broadcast(nodes, WarpMask::ALL, 42);
//! assert_eq!(warp.counters.global_transactions, 1);
//!
//! // Divergent pattern: every lane at its own node, 128 B apart — 32.
//! warp.load(nodes, WarpMask::ALL, |lane| (lane as u64) * 8);
//! assert_eq!(warp.counters.global_transactions, 33);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cost;
pub mod counters;
pub mod engine;
pub mod l2;
pub mod mask;
pub mod memory;
pub mod sched;

pub use config::DeviceConfig;
pub use cost::CostModel;
pub use counters::SimCounters;
pub use engine::{KernelLaunch, WarpSim};
pub use l2::{L2Cache, L2Config};
pub use mask::WarpMask;
pub use memory::{AddressMap, MemSpace, Region, RegionId};
pub use sched::Schedule;

/// Number of lanes in a warp. Fixed at 32 to match CUDA-era hardware and the
/// paper's evaluation platform; the mask type is a `u32` bit-vector.
pub const WARP_SIZE: usize = 32;
