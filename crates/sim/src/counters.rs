//! Event counters accumulated during simulated execution.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Everything the simulator counted for one kernel launch (or one warp,
/// before aggregation). All counts are exact, deterministic, and
/// hardware-independent; cycles are derived from them by the cost model.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimCounters {
    /// Warp instructions issued (every step, regardless of active lanes —
    /// masked-out lanes still occupy issue slots; this is the SIMT tax).
    pub warp_steps: u64,
    /// Arithmetic instructions issued (warp-wide).
    pub compute_insts: u64,
    /// Global-memory transactions after coalescing.
    pub global_transactions: u64,
    /// Bytes moved over the DRAM bus (transactions × segment size).
    pub global_bus_bytes: u64,
    /// Bytes lanes actually asked for; `useful / bus` is coalescing
    /// efficiency.
    pub global_useful_bytes: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// Global accesses served by the (optional) L2 cache model.
    pub l2_hits: u64,
    /// Divergent branch replays (both-sides execution).
    pub divergent_replays: u64,
    /// Call/return pairs executed (nonzero only for the naïve recursive
    /// baseline; autoropes eliminates them, paper §3.2.2).
    pub calls: u64,
    /// Tree-node visits summed over lanes: the paper's “Avg. # Nodes”
    /// column is `node_visits / n_points`.
    pub node_visits: u64,
    /// Node visits counted once per *warp* step that touched a node —
    /// lockstep work-expansion numerator (paper §6.3 / Table 2).
    pub warp_node_visits: u64,
    /// Per-region transaction breakdown, keyed by region name.
    pub per_region_transactions: BTreeMap<String, u64>,
    /// Peak bytes of rope-stack (or call-frame) storage any warp of this
    /// launch actually used: deepest observed stack × entry bytes ×
    /// (lanes, for per-lane stacks). Stackless executors report 0 — the
    /// headline claim of the skip-link and left-balanced walks, observable
    /// per batch. Merges by `max`, not `+` (a footprint, not a flow).
    pub stack_bytes_peak: u64,
    /// Accumulated issue cycles (priced at record time).
    pub issue_cycles: f64,
    /// Accumulated memory-stall cycles (priced at record time; the
    /// scheduler decides how much of this is hidden).
    pub stall_cycles: f64,
}

impl SimCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another counter set into this one (e.g. fold warps into a
    /// launch total).
    pub fn merge(&mut self, other: &SimCounters) {
        self.warp_steps += other.warp_steps;
        self.compute_insts += other.compute_insts;
        self.global_transactions += other.global_transactions;
        self.global_bus_bytes += other.global_bus_bytes;
        self.global_useful_bytes += other.global_useful_bytes;
        self.shared_accesses += other.shared_accesses;
        self.l2_hits += other.l2_hits;
        self.divergent_replays += other.divergent_replays;
        self.calls += other.calls;
        self.node_visits += other.node_visits;
        self.warp_node_visits += other.warp_node_visits;
        self.issue_cycles += other.issue_cycles;
        self.stall_cycles += other.stall_cycles;
        for (k, v) in &other.per_region_transactions {
            *self.per_region_transactions.entry(k.clone()).or_insert(0) += v;
        }
        // A peak footprint, not a flow: the launch-wide peak is the widest
        // single warp, not the sum over warps.
        self.stack_bytes_peak = self.stack_bytes_peak.max(other.stack_bytes_peak);
    }

    /// Useful bytes delivered per byte moved over the DRAM bus. 1.0 means
    /// perfectly coalesced; below 1.0 means scattered accesses wasted bus
    /// segments; *above* 1.0 means broadcast amplification — one
    /// transaction served many lanes (the lockstep node-load pattern).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.global_bus_bytes == 0 {
            1.0
        } else {
            self.global_useful_bytes as f64 / self.global_bus_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything() {
        let mut a = SimCounters {
            warp_steps: 10,
            global_transactions: 5,
            node_visits: 7,
            issue_cycles: 2.5,
            ..Default::default()
        };
        a.per_region_transactions.insert("nodes0".into(), 3);
        let mut b = SimCounters {
            warp_steps: 1,
            global_transactions: 2,
            node_visits: 3,
            issue_cycles: 0.5,
            ..Default::default()
        };
        b.per_region_transactions.insert("nodes0".into(), 1);
        b.per_region_transactions.insert("stack".into(), 9);
        a.merge(&b);
        assert_eq!(a.warp_steps, 11);
        assert_eq!(a.global_transactions, 7);
        assert_eq!(a.node_visits, 10);
        assert_eq!(a.issue_cycles, 3.0);
        assert_eq!(a.per_region_transactions["nodes0"], 4);
        assert_eq!(a.per_region_transactions["stack"], 9);
    }

    #[test]
    fn stack_bytes_peak_merges_by_max() {
        let mut a = SimCounters {
            stack_bytes_peak: 512,
            ..Default::default()
        };
        let b = SimCounters {
            stack_bytes_peak: 384,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(
            a.stack_bytes_peak, 512,
            "smaller warp must not shrink the peak"
        );
        let c = SimCounters {
            stack_bytes_peak: 4096,
            ..Default::default()
        };
        a.merge(&c);
        assert_eq!(a.stack_bytes_peak, 4096);
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        let c = SimCounters {
            global_bus_bytes: 1280,
            global_useful_bytes: 128,
            ..Default::default()
        };
        assert!((c.coalescing_efficiency() - 0.1).abs() < 1e-12);
        assert_eq!(SimCounters::default().coalescing_efficiency(), 1.0);
    }
}
