//! Global-memory address space and the coalescing model.
//!
//! Paper §2.2: *“Global memory is capable of achieving very high throughput
//! as long as threads of a warp access elements from the same 128-byte
//! segment. If memory accesses are coalesced then each request will be
//! merged into a single global memory transaction; otherwise the hardware
//! will group accesses into as few transactions as possible.”*
//!
//! Executors allocate [`Region`]s for every array the kernel touches (tree
//! node arrays, point arrays, interleaved rope stacks) from an
//! [`AddressMap`], then report each warp-step's per-lane addresses. The
//! coalescer counts the number of distinct segments touched — that count is
//! the number of memory transactions the step costs.

use serde::{Deserialize, Serialize};

use crate::{WarpMask, WARP_SIZE};

/// Which memory a transaction targets. Shared memory (paper §2.2's
/// software-controlled cache) has its own, much cheaper cost and is not
/// subject to segment coalescing — banks are modeled as conflict-free for
/// the broadcast/per-lane-contiguous patterns the rope stack produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device DRAM behind the coalescer.
    Global,
    /// Per-SM scratchpad.
    Shared,
}

/// Identifies an allocated region; indexes into the [`AddressMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u32);

/// A named, contiguous allocation in the simulated address space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable name ("kd.nodes0", "stack.interleaved", ...), used in
    /// traffic breakdowns.
    pub name: String,
    /// Base address. Regions are segment-aligned so that cross-region
    /// accesses never share a transaction (matches `cudaMalloc` alignment).
    pub base: u64,
    /// Element stride in bytes.
    pub stride: u64,
    /// Number of elements.
    pub len: u64,
    /// Which space the region lives in.
    pub space: MemSpace,
}

impl Region {
    /// Address of element `index`.
    pub fn addr(&self, index: u64) -> u64 {
        debug_assert!(
            index < self.len,
            "region {} index {index} out of bounds (len {})",
            self.name,
            self.len
        );
        self.base + index * self.stride
    }

    /// Total footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.stride * self.len
    }
}

/// Allocates regions and resolves element addresses.
///
/// Two address spaces are kept: one for global memory and one for shared
/// memory (the GPU keeps them separate; so do we, so a shared-memory region
/// can never be confused with a global one in the coalescer).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AddressMap {
    regions: Vec<Region>,
    global_top: u64,
    shared_top: u64,
}

/// Alignment for region bases; one coalescing segment.
const REGION_ALIGN: u64 = 128;

impl AddressMap {
    /// Fresh, empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a region of `len` elements of `stride` bytes each.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        space: MemSpace,
        len: u64,
        stride: u64,
    ) -> RegionId {
        assert!(stride > 0, "zero-stride region");
        let top = match space {
            MemSpace::Global => &mut self.global_top,
            MemSpace::Shared => &mut self.shared_top,
        };
        let base = (*top).next_multiple_of(REGION_ALIGN);
        *top = base + len.max(1) * stride;
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            name: name.into(),
            base,
            stride,
            len: len.max(1),
            space,
        });
        id
    }

    /// Look up a region.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Total bytes allocated in shared memory; the scheduler divides this
    /// by warps to derive occupancy.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_top
    }

    /// Total bytes allocated in global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_top
    }

    /// All regions, for traffic breakdowns.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

/// One warp-step memory request: for each lane, the address it reads or
/// writes (or `None` if the lane is inactive / not participating), plus the
/// access width in bytes.
#[derive(Debug, Clone)]
pub struct WarpAccess {
    /// Per-lane byte addresses.
    pub addrs: [Option<u64>; WARP_SIZE],
    /// Bytes moved per lane (a node-fragment load, a stack slot, ...).
    pub bytes_per_lane: u64,
    /// Target space.
    pub space: MemSpace,
}

impl WarpAccess {
    /// Build a request where every lane active in `mask` accesses
    /// `region[index(lane)]`.
    pub fn per_lane(
        map: &AddressMap,
        region: RegionId,
        mask: WarpMask,
        index: impl Fn(usize) -> u64,
    ) -> WarpAccess {
        let r = map.region(region);
        let mut addrs = [None; WARP_SIZE];
        for lane in mask.iter_active() {
            addrs[lane] = Some(r.addr(index(lane)));
        }
        WarpAccess {
            addrs,
            bytes_per_lane: r.stride,
            space: r.space,
        }
    }

    /// Build a broadcast request: all lanes active in `mask` access the
    /// same element. This is the pattern lockstep traversal produces for
    /// node loads — “all threads in the warp will be loading from the same
    /// memory location” (paper §4.2) — and it coalesces to one transaction.
    pub fn broadcast(map: &AddressMap, region: RegionId, mask: WarpMask, index: u64) -> WarpAccess {
        let r = map.region(region);
        let mut addrs = [None; WARP_SIZE];
        let a = r.addr(index);
        for lane in mask.iter_active() {
            addrs[lane] = Some(a);
        }
        WarpAccess {
            addrs,
            bytes_per_lane: r.stride,
            space: r.space,
        }
    }

    /// Number of active lanes in the request.
    pub fn active_lanes(&self) -> usize {
        self.addrs.iter().filter(|a| a.is_some()).count()
    }
}

/// Result of coalescing one [`WarpAccess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceOutcome {
    /// Number of memory transactions issued (distinct 128 B segments for
    /// global memory; 1 for any shared-memory access under our bank model).
    pub transactions: u64,
    /// Bytes actually moved across the memory interface
    /// (`transactions × segment_bytes` for global, useful bytes for shared).
    pub bus_bytes: u64,
    /// Useful bytes requested by lanes.
    pub useful_bytes: u64,
}

/// The deduplicated list of 128-byte segments a warp access touches.
/// (An access spanning a segment boundary touches both segments.)
pub fn touched_segments(access: &WarpAccess, segment_bytes: u64) -> Vec<u64> {
    let mut segs: Vec<u64> = Vec::with_capacity(WARP_SIZE);
    for addr in access.addrs.iter().flatten() {
        let first = addr / segment_bytes;
        let last = (addr + access.bytes_per_lane.max(1) - 1) / segment_bytes;
        for s in first..=last {
            segs.push(s);
        }
    }
    segs.sort_unstable();
    segs.dedup();
    segs
}

/// Coalesce a warp access into transactions, given the device segment size.
///
/// All touched segments across all lanes are deduplicated — the hardware
/// groups accesses “into as few transactions as possible” (paper §2.2).
pub fn coalesce(access: &WarpAccess, segment_bytes: u64) -> CoalesceOutcome {
    let active = access.active_lanes() as u64;
    let useful = active * access.bytes_per_lane;
    if active == 0 {
        return CoalesceOutcome {
            transactions: 0,
            bus_bytes: 0,
            useful_bytes: 0,
        };
    }
    match access.space {
        MemSpace::Shared => CoalesceOutcome {
            transactions: 1,
            bus_bytes: useful,
            useful_bytes: useful,
        },
        MemSpace::Global => {
            let transactions = touched_segments(access, segment_bytes).len() as u64;
            CoalesceOutcome {
                transactions,
                bus_bytes: transactions * segment_bytes,
                useful_bytes: useful,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with(name: &str, len: u64, stride: u64) -> (AddressMap, RegionId) {
        let mut m = AddressMap::new();
        let r = m.alloc(name, MemSpace::Global, len, stride);
        (m, r)
    }

    #[test]
    fn regions_are_segment_aligned_and_disjoint() {
        let mut m = AddressMap::new();
        let a = m.alloc("a", MemSpace::Global, 3, 20);
        let b = m.alloc("b", MemSpace::Global, 5, 16);
        let (ra, rb) = (m.region(a).clone(), m.region(b).clone());
        assert_eq!(ra.base % 128, 0);
        assert_eq!(rb.base % 128, 0);
        assert!(rb.base >= ra.base + ra.bytes());
    }

    #[test]
    fn shared_and_global_spaces_are_independent() {
        let mut m = AddressMap::new();
        let g = m.alloc("g", MemSpace::Global, 4, 32);
        let s = m.alloc("s", MemSpace::Shared, 4, 32);
        // Both may start at address 0 of their own space.
        assert_eq!(m.region(g).base, 0);
        assert_eq!(m.region(s).base, 0);
        assert_eq!(m.shared_bytes(), 128);
    }

    #[test]
    fn broadcast_coalesces_to_one_transaction() {
        let (m, r) = map_with("nodes", 100, 16);
        let acc = WarpAccess::broadcast(&m, r, WarpMask::ALL, 7);
        let out = coalesce(&acc, 128);
        assert_eq!(out.transactions, 1);
        assert_eq!(out.useful_bytes, 32 * 16);
    }

    #[test]
    fn contiguous_lanes_coalesce() {
        // 32 lanes × 4-byte elements = 128 bytes = exactly one segment
        // when the region is segment-aligned.
        let (m, r) = map_with("vals", 64, 4);
        let acc = WarpAccess::per_lane(&m, r, WarpMask::ALL, |l| l as u64);
        assert_eq!(coalesce(&acc, 128).transactions, 1);
    }

    #[test]
    fn scattered_lanes_serialize() {
        // Each lane hits its own segment: 32 transactions.
        let (m, r) = map_with("tree", 10_000, 16);
        let acc = WarpAccess::per_lane(&m, r, WarpMask::ALL, |l| (l as u64) * 64);
        assert_eq!(coalesce(&acc, 128).transactions, 32);
    }

    #[test]
    fn straddling_access_touches_two_segments() {
        // One lane reading 64 bytes starting 96 bytes into a segment.
        let (m, r) = map_with("wide", 100, 64);
        let lane0 = WarpMask::lane(0);
        // element 0 at base (aligned) → 1 segment; craft a straddle by
        // using stride 64 and element index such that addr % 128 = 96:
        // index-based addressing cannot produce that with stride 64 from an
        // aligned base (offsets 0 or 64), so test the raw path instead.
        let mut acc = WarpAccess::per_lane(&m, r, lane0, |_| 0);
        acc.addrs[0] = Some(m.region(r).base + 96);
        assert_eq!(coalesce(&acc, 128).transactions, 2);
    }

    #[test]
    fn inactive_warp_costs_nothing() {
        let (m, r) = map_with("x", 8, 8);
        let acc = WarpAccess::per_lane(&m, r, WarpMask::NONE, |l| l as u64);
        let out = coalesce(&acc, 128);
        assert_eq!(out.transactions, 0);
        assert_eq!(out.bus_bytes, 0);
    }

    #[test]
    fn shared_access_is_single_transaction() {
        let mut m = AddressMap::new();
        let r = m.alloc("stk", MemSpace::Shared, 1024, 8);
        let acc = WarpAccess::per_lane(&m, r, WarpMask::ALL, |l| (l as u64) * 17);
        let out = coalesce(&acc, 128);
        assert_eq!(out.transactions, 1);
        assert_eq!(out.bus_bytes, 32 * 8);
    }

    #[test]
    fn partial_mask_counts_only_active_lanes() {
        let (m, r) = map_with("p", 64, 4);
        let acc = WarpAccess::per_lane(&m, r, WarpMask::first(5), |l| l as u64);
        assert_eq!(acc.active_lanes(), 5);
        assert_eq!(coalesce(&acc, 128).useful_bytes, 20);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn region_bounds_checked_in_debug() {
        let (m, r) = map_with("small", 4, 8);
        let _ = m.region(r).addr(4);
    }
}
