//! Warp lane masks and warp-wide vote operations.
//!
//! The lockstep transformation (paper §4.2) keeps truncated points moving
//! with their warp under a *mask bit-vector* pushed onto the rope stack.
//! Lanes clear their own bit when their point truncates; a warp-wide
//! combine (`warp_and` in the paper's pseudocode, `ballot` on real
//! hardware) produces the mask propagated to child nodes. This module
//! implements that algebra on a `u32`.

use std::fmt;

use crate::WARP_SIZE;

/// A 32-lane activity mask. Bit `i` set means lane `i` participates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WarpMask(pub u32);

impl WarpMask {
    /// Mask with all 32 lanes active (`~0` in the paper's Figure 8).
    pub const ALL: WarpMask = WarpMask(u32::MAX);
    /// Mask with no lanes active; a warp popping this mask does no work.
    pub const NONE: WarpMask = WarpMask(0);

    /// Mask with the low `n` lanes active. Used for the tail warp when the
    /// point count is not a multiple of 32.
    pub fn first(n: usize) -> WarpMask {
        assert!(n <= WARP_SIZE, "warp has only {WARP_SIZE} lanes");
        if n == WARP_SIZE {
            WarpMask::ALL
        } else {
            WarpMask((1u32 << n) - 1)
        }
    }

    /// Mask with exactly lane `lane` active.
    pub fn lane(lane: usize) -> WarpMask {
        assert!(lane < WARP_SIZE);
        WarpMask(1 << lane)
    }

    /// Is lane `lane` active? (`bit_set` in the paper's Figure 8.)
    pub fn is_set(self, lane: usize) -> bool {
        debug_assert!(lane < WARP_SIZE);
        self.0 & (1 << lane) != 0
    }

    /// Clear lane `lane` (`bit_clear` in the paper's Figure 8): the lane's
    /// point truncated here and stops computing, though it is still carried
    /// along by the warp.
    pub fn clear(self, lane: usize) -> WarpMask {
        debug_assert!(lane < WARP_SIZE);
        WarpMask(self.0 & !(1 << lane))
    }

    /// Set lane `lane`.
    pub fn set(self, lane: usize) -> WarpMask {
        debug_assert!(lane < WARP_SIZE);
        WarpMask(self.0 | (1 << lane))
    }

    /// Warp vote: combine per-lane masks with bitwise AND. Each lane holds
    /// the shared mask with *its own* bit possibly cleared, so the AND
    /// yields the set of lanes still active (paper §4.2, footnote 3: the
    /// `ballot` instruction implements the equivalent).
    pub fn warp_and(lane_masks: &[WarpMask]) -> WarpMask {
        lane_masks
            .iter()
            .fold(WarpMask::ALL, |acc, m| WarpMask(acc.0 & m.0))
    }

    /// Warp ballot: build a mask from a per-lane predicate.
    pub fn ballot(pred: impl Fn(usize) -> bool) -> WarpMask {
        let mut m = 0u32;
        for lane in 0..WARP_SIZE {
            if pred(lane) {
                m |= 1 << lane;
            }
        }
        WarpMask(m)
    }

    /// Number of active lanes.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no lane is active — the warp truncates its traversal
    /// ("a warp only truncates its traversal when all the points in the
    /// warp have been truncated", paper §4.2).
    pub fn none_active(self) -> bool {
        self.0 == 0
    }

    /// True if at least one lane is active.
    pub fn any_active(self) -> bool {
        self.0 != 0
    }

    /// Intersection of two masks.
    pub fn and(self, other: WarpMask) -> WarpMask {
        WarpMask(self.0 & other.0)
    }

    /// Union of two masks.
    pub fn or(self, other: WarpMask) -> WarpMask {
        WarpMask(self.0 | other.0)
    }

    /// Iterate over the indices of active lanes, ascending.
    pub fn iter_active(self) -> impl Iterator<Item = usize> {
        let bits = self.0;
        (0..WARP_SIZE).filter(move |&l| bits & (1 << l) != 0)
    }
}

impl fmt::Debug for WarpMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WarpMask({:032b})", self.0)
    }
}

/// Majority vote between active lanes over a small choice space, used by
/// the dynamic single-call-set reduction (paper §4.3): each active lane
/// proposes a call set index and the warp adopts the most popular one.
/// Ties break toward the lower index, making the vote deterministic.
/// Returns `None` when no lane is active.
pub fn majority_vote(
    mask: WarpMask,
    choice: impl Fn(usize) -> usize,
    n_choices: usize,
) -> Option<usize> {
    if mask.none_active() {
        return None;
    }
    assert!(
        n_choices > 0 && n_choices <= WARP_SIZE,
        "choice space must fit a warp vote"
    );
    let mut counts = [0usize; WARP_SIZE];
    for lane in mask.iter_active() {
        let c = choice(lane);
        assert!(
            c < n_choices,
            "lane {lane} voted for out-of-range call set {c}"
        );
        counts[c] += 1;
    }
    counts[..n_choices]
        .iter()
        .enumerate()
        .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_lanes() {
        assert_eq!(WarpMask::first(0), WarpMask::NONE);
        assert_eq!(WarpMask::first(32), WarpMask::ALL);
        assert_eq!(WarpMask::first(3).0, 0b111);
        assert_eq!(WarpMask::first(3).count(), 3);
    }

    #[test]
    #[should_panic(expected = "warp has only")]
    fn first_rejects_oversize() {
        let _ = WarpMask::first(33);
    }

    #[test]
    fn set_clear_roundtrip() {
        let m = WarpMask::ALL.clear(5);
        assert!(!m.is_set(5));
        assert!(m.is_set(4));
        assert_eq!(m.set(5), WarpMask::ALL);
        assert_eq!(m.count(), 31);
    }

    #[test]
    fn warp_and_matches_paper_semantics() {
        // Lanes 2 and 7 truncate: each clears its own bit in a private copy
        // of the shared mask; AND-combining yields the surviving set.
        let shared = WarpMask::first(8);
        let lanes: Vec<WarpMask> = (0..WARP_SIZE)
            .map(|l| {
                if l == 2 || l == 7 {
                    shared.clear(l)
                } else {
                    shared
                }
            })
            .collect();
        let combined = WarpMask::warp_and(&lanes);
        assert_eq!(combined, shared.clear(2).clear(7));
        assert_eq!(combined.count(), 6);
    }

    #[test]
    fn ballot_builds_mask_from_predicate() {
        let m = WarpMask::ballot(|l| l % 2 == 0);
        assert_eq!(m.count(), 16);
        assert!(m.is_set(0));
        assert!(!m.is_set(1));
    }

    #[test]
    fn none_and_any() {
        assert!(WarpMask::NONE.none_active());
        assert!(!WarpMask::NONE.any_active());
        assert!(WarpMask::lane(31).any_active());
    }

    #[test]
    fn iter_active_ascending() {
        let m = WarpMask::lane(3)
            .or(WarpMask::lane(17))
            .or(WarpMask::lane(0));
        let lanes: Vec<usize> = m.iter_active().collect();
        assert_eq!(lanes, vec![0, 3, 17]);
    }

    #[test]
    fn majority_vote_picks_most_popular() {
        // 5 active lanes: 3 vote for set 1, 2 for set 0.
        let mask = WarpMask::first(5);
        let v = majority_vote(mask, |l| if l < 3 { 1 } else { 0 }, 2);
        assert_eq!(v, Some(1));
    }

    #[test]
    fn majority_vote_tie_breaks_low() {
        let mask = WarpMask::first(4);
        let v = majority_vote(mask, |l| l % 2, 2);
        assert_eq!(v, Some(0));
    }

    #[test]
    fn majority_vote_empty_warp() {
        assert_eq!(majority_vote(WarpMask::NONE, |_| 0, 2), None);
    }

    #[test]
    fn majority_vote_ignores_inactive_lanes() {
        // Inactive lanes would vote 1; only active lanes (voting 0) count.
        let mask = WarpMask::first(2);
        let v = majority_vote(mask, |l| if l < 2 { 0 } else { 1 }, 2);
        assert_eq!(v, Some(0));
    }
}
