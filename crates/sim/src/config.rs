//! Device configuration: SM count, warp capacity, shared memory size.
//!
//! The default configuration mirrors the paper's evaluation GPU, an nVidia
//! Tesla C2070 (Fermi): 14 SMs × 32 SPs, 64 KB configurable shared memory
//! per SM, 1.15 GHz SP clock, 6 GB GDDR5.

use serde::{Deserialize, Serialize};

use crate::WARP_SIZE;

/// Static description of the simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum warps resident on one SM at a time (occupancy ceiling).
    /// Fermi allows 48 resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Shared memory per SM in bytes (64 KB configurable on Fermi; we model
    /// the full 64 KB dedicated to shared memory, as the traversal kernels
    /// do not benefit from L1 configuration).
    pub shared_mem_per_sm: usize,
    /// Core clock in GHz, used to convert cycles to milliseconds.
    pub clock_ghz: f64,
    /// Width of a global-memory coalescing segment in bytes (128 on Fermi).
    pub segment_bytes: u64,
    /// Threads per block used when launching traversal kernels.
    pub threads_per_block: usize,
    /// Peak DRAM bandwidth in bytes per core cycle. The scheduler applies
    /// a roofline: a launch can never finish faster than
    /// `bus_bytes / mem_bytes_per_cycle` — this is what makes coalescing
    /// matter at scale (an uncoalesced warp load moves 32 segments across
    /// the bus where a broadcast moves one).
    pub mem_bytes_per_cycle: f64,
}

impl DeviceConfig {
    /// The paper's evaluation GPU: Tesla C2070 (Fermi, compute 2.0).
    pub fn tesla_c2070() -> Self {
        DeviceConfig {
            num_sms: 14,
            max_warps_per_sm: 48,
            shared_mem_per_sm: 64 * 1024,
            clock_ghz: 1.15,
            segment_bytes: 128,
            threads_per_block: 256,
            // C2070: 144 GB/s at 1.15 GHz ≈ 125 B/cycle.
            mem_bytes_per_cycle: 125.0,
        }
    }

    /// A deliberately tiny device for tests: 2 SMs, 4 resident warps each.
    /// Small enough that scheduling corner cases (more warps than slots,
    /// uneven SM loads) show up with handfuls of points.
    pub fn tiny() -> Self {
        DeviceConfig {
            num_sms: 2,
            max_warps_per_sm: 4,
            shared_mem_per_sm: 16 * 1024,
            clock_ghz: 1.0,
            segment_bytes: 128,
            threads_per_block: 64,
            // Effectively unlimited: tiny-device tests exercise the
            // issue/stall arithmetic, not the roofline.
            mem_bytes_per_cycle: 1.0e12,
        }
    }

    /// Warps per block under this configuration.
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block.div_ceil(WARP_SIZE)
    }

    /// Number of warps needed to cover `n_points` traversals, one lane per
    /// point (the strip-mined grid-stride loop of paper §5.2 maps surplus
    /// points back onto the same warps; the scheduler accounts for that by
    /// cycling warps, so the *logical* warp count is what matters here).
    pub fn warps_for(&self, n_points: usize) -> usize {
        n_points.div_ceil(WARP_SIZE)
    }

    /// Occupancy: how many warps can actually be resident per SM given that
    /// each warp consumes `shared_bytes_per_warp` bytes of shared memory.
    /// Paper §2.2: "if too much is used per thread, fewer thread blocks can
    /// occupy an SM simultaneously, reducing parallelism".
    pub fn resident_warps(&self, shared_bytes_per_warp: usize) -> usize {
        if shared_bytes_per_warp == 0 {
            return self.max_warps_per_sm;
        }
        let fit = self.shared_mem_per_sm / shared_bytes_per_warp;
        fit.clamp(1, self.max_warps_per_sm)
    }

    /// Convert a cycle count to modeled milliseconds at this device's clock.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1.0e6)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::tesla_c2070()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2070_matches_paper_platform() {
        let d = DeviceConfig::tesla_c2070();
        assert_eq!(d.num_sms, 14);
        assert_eq!(d.shared_mem_per_sm, 64 * 1024);
        assert_eq!(d.segment_bytes, 128);
    }

    #[test]
    fn warps_for_rounds_up() {
        let d = DeviceConfig::default();
        assert_eq!(d.warps_for(0), 0);
        assert_eq!(d.warps_for(1), 1);
        assert_eq!(d.warps_for(32), 1);
        assert_eq!(d.warps_for(33), 2);
        assert_eq!(d.warps_for(1_000_000), 31_250);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let d = DeviceConfig::tesla_c2070();
        // No shared memory use: full occupancy.
        assert_eq!(d.resident_warps(0), 48);
        // 1 KB per warp: 64 warps would fit, clamped at the hardware max.
        assert_eq!(d.resident_warps(1024), 48);
        // 4 KB per warp: only 16 warps fit.
        assert_eq!(d.resident_warps(4 * 1024), 16);
        // Oversized request still leaves one resident warp (kernel runs,
        // just without any latency hiding).
        assert_eq!(d.resident_warps(128 * 1024), 1);
    }

    #[test]
    fn cycles_to_ms_uses_clock() {
        let d = DeviceConfig::tesla_c2070();
        let ms = d.cycles_to_ms(1.15e9); // one second of cycles
        assert!((ms - 1000.0).abs() < 1e-6);
    }
}
