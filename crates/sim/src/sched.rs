//! SM-level scheduling and latency hiding.
//!
//! Warps are grouped into thread blocks (`threads_per_block / 32` warps
//! per block) and *blocks* are assigned round-robin to SMs, as on real
//! hardware. Within an SM, issue cycles serialize — one
//! warp scheduler — while memory stall cycles overlap with other resident
//! warps' execution: with `R` resident warps, a warp's stall is hidden by
//! the `R − 1` others, so the exposed stall divides by `min(R, warps on
//! this SM)`. This reproduces the two first-order effects the paper's
//! transformations target: transaction counts (coalescing) feed stall
//! cycles, and shared-memory overuse reduces `R` (paper §2.2).

use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::counters::SimCounters;
use crate::DeviceConfig;

/// The result of scheduling one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchReport {
    /// Modeled execution time in cycles (max over SMs + launch overhead).
    pub cycles: f64,
    /// Modeled execution time in milliseconds at the device clock.
    pub time_ms: f64,
    /// Resident warps per SM after the shared-memory occupancy cap.
    pub resident_warps: usize,
    /// Number of warps launched.
    pub warps: usize,
    /// Launch-wide event totals.
    pub counters: SimCounters,
    /// Per-SM busy cycles (diagnostics; load imbalance shows up here).
    pub sm_cycles: Vec<f64>,
}

/// The scheduling model. Stateless; [`Schedule::run`] is the only entry.
pub struct Schedule;

impl Schedule {
    /// Fold per-warp `(issue, stall)` cycles into a device time.
    pub fn run(
        device: &DeviceConfig,
        cost: &CostModel,
        warp_cycles: &[(f64, f64)],
        shared_bytes_per_warp: usize,
        counters: SimCounters,
    ) -> LaunchReport {
        let resident = device.resident_warps(shared_bytes_per_warp);
        let warps_per_block = device.warps_per_block().max(1);
        let mut sm_issue = vec![0.0f64; device.num_sms];
        let mut sm_stall = vec![0.0f64; device.num_sms];
        let mut sm_warps = vec![0usize; device.num_sms];
        for (i, &(issue, stall)) in warp_cycles.iter().enumerate() {
            // Hardware dispatches whole thread blocks; a block's warps land
            // on one SM together.
            let block = i / warps_per_block;
            let sm = block % device.num_sms;
            sm_issue[sm] += issue;
            sm_stall[sm] += stall;
            sm_warps[sm] += 1;
        }
        let sm_cycles: Vec<f64> = (0..device.num_sms)
            .map(|sm| {
                if sm_warps[sm] == 0 {
                    return 0.0;
                }
                let overlap = resident.min(sm_warps[sm]).max(1) as f64;
                // Memory stalls overlap with other warps' issue and with
                // each other; with R-way multithreading the exposed stall
                // shrinks R-fold but never below zero. Issue is serial.
                sm_issue[sm] + sm_stall[sm] / overlap
            })
            .collect();
        let busiest = sm_cycles.iter().cloned().fold(0.0, f64::max);
        // DRAM bandwidth roofline: total bus traffic bounds the launch
        // from below no matter how well stalls overlap. Uncoalesced
        // kernels hit this wall 10–30× sooner than broadcast-heavy ones.
        let bandwidth_floor = counters.global_bus_bytes as f64 / device.mem_bytes_per_cycle;
        let cycles = busiest.max(bandwidth_floor) + cost.launch_overhead;
        LaunchReport {
            cycles,
            time_ms: device.cycles_to_ms(cycles),
            resident_warps: resident,
            warps: warp_cycles.len(),
            counters,
            sm_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_report(warps: &[(f64, f64)], shared: usize) -> LaunchReport {
        Schedule::run(
            &DeviceConfig::tiny(),
            &CostModel::unit(),
            warps,
            shared,
            SimCounters::default(),
        )
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let r = unit_report(&[], 0);
        assert_eq!(r.cycles, 0.0);
        assert_eq!(r.warps, 0);
    }

    #[test]
    fn single_warp_no_hiding() {
        // One warp on one SM: full stall exposed.
        let r = unit_report(&[(10.0, 100.0)], 0);
        assert_eq!(r.cycles, 110.0);
    }

    #[test]
    fn blocks_round_robin_across_sms() {
        // tiny(): 64 threads/block = 2 warps/block, 2 SMs. 4 identical
        // warps = 2 blocks → one block (2 warps) per SM.
        let warps = vec![(10.0, 0.0); 4];
        let r = unit_report(&warps, 0);
        assert_eq!(r.sm_cycles, vec![20.0, 20.0]);
        assert_eq!(r.cycles, 20.0);
    }

    #[test]
    fn warps_of_one_block_share_an_sm() {
        // 2 warps = 1 block → both on SM 0; SM 1 idle.
        let r = unit_report(&[(1000.0, 0.0), (100.0, 0.0)], 0);
        assert_eq!(r.sm_cycles, vec![1100.0, 0.0]);
        assert_eq!(r.cycles, 1100.0);
    }

    #[test]
    fn multithreading_hides_stalls() {
        // 4 warps = 2 blocks on 2 SMs, 2 warps per SM, stall 100 each →
        // exposed 100/2 per SM... wait: total stall 200 per SM / overlap 2.
        let warps = vec![(0.0, 100.0); 4];
        let r = unit_report(&warps, 0);
        assert_eq!(r.cycles, 100.0);
        // A single block's two warps still overlap each other.
        let r1 = unit_report(&[(0.0, 100.0), (0.0, 100.0)], 0);
        assert_eq!(r1.cycles, 100.0);
    }

    #[test]
    fn shared_memory_pressure_reduces_hiding() {
        // tiny(): 16 KB shared per SM, max 4 resident warps.
        // 8 warps on 2 SMs = 4 per SM. With no shared use, overlap = 4.
        let warps = vec![(0.0, 400.0); 8];
        let free = unit_report(&warps, 0);
        assert_eq!(free.resident_warps, 4);
        assert_eq!(free.cycles, 1600.0 / 4.0);
        // 8 KB per warp → only 2 resident → half the hiding.
        let tight = unit_report(&warps, 8 * 1024);
        assert_eq!(tight.resident_warps, 2);
        assert_eq!(tight.cycles, 1600.0 / 2.0);
        assert!(tight.cycles > free.cycles);
    }

    #[test]
    fn imbalanced_blocks_gate_on_busiest_sm() {
        // Two blocks (4 warps): block 0 is 10× longer than block 1.
        let r = unit_report(
            &[(1000.0, 0.0), (1000.0, 0.0), (100.0, 0.0), (100.0, 0.0)],
            0,
        );
        assert_eq!(r.cycles, 2000.0);
        assert_eq!(r.sm_cycles, vec![2000.0, 200.0]);
    }

    #[test]
    fn launch_overhead_applied_once() {
        let mut cost = CostModel::unit();
        cost.launch_overhead = 77.0;
        let r = Schedule::run(
            &DeviceConfig::tiny(),
            &cost,
            &[(1.0, 0.0)],
            0,
            SimCounters::default(),
        );
        assert_eq!(r.cycles, 78.0);
    }

    #[test]
    fn time_ms_consistent_with_clock() {
        let device = DeviceConfig::tesla_c2070();
        let r = Schedule::run(
            &device,
            &CostModel::unit(),
            &[(1.15e6, 0.0)],
            0,
            SimCounters::default(),
        );
        assert!((r.time_ms - device.cycles_to_ms(r.cycles)).abs() < 1e-12);
    }
}
