//! The cycle cost model.
//!
//! The simulator is event-counting: executors report what a warp step *did*
//! (instructions issued, memory transactions, divergent replays) and this
//! model prices those events in cycles. Constants default to published
//! Fermi-generation figures; they live in one struct so ablation benches
//! can sweep them and EXPERIMENTS.md can state exactly what was assumed.
//!
//! The model deliberately separates *issue* cycles (always serialized
//! within an SM's warp scheduler) from *memory stall* cycles (overlapped
//! across resident warps by the scheduler in [`crate::sched`]). That split
//! is what makes coalescing matter: a step with 32 transactions carries
//! 32× the stall weight of a broadcast load, which multithreading can only
//! partially hide.

use serde::{Deserialize, Serialize};

/// Cycle prices for simulated events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles to issue one warp instruction (SIMD over 32 lanes).
    pub issue: f64,
    /// Issue cost of one warp-step's worth of traversal bookkeeping
    /// (pop, branch, compare) — multiplies per-step `compute_insts`.
    pub alu_per_inst: f64,
    /// Cycles of latency for a global memory transaction (Fermi: ~400–600).
    pub global_latency: f64,
    /// Additional pipeline cycles per extra transaction of the same warp
    /// request (serialization at the memory controller).
    pub global_per_transaction: f64,
    /// Cycles for a shared-memory access (Fermi: ~30 including conflicts;
    /// we charge the conflict-free figure).
    pub shared_latency: f64,
    /// Cycles charged per *divergent replay*: a branch whose lanes split
    /// forces the warp to execute both sides; each replayed side costs this
    /// on top of normal issue.
    pub divergence_replay: f64,
    /// Call/return overhead in cycles for the naïve recursive baseline:
    /// the ABI prologue/epilogue of a device-side call (register spill and
    /// reload around the call, computed branch). Fermi device recursion is
    /// expensive — this is precisely the overhead autoropes removes
    /// (paper §3).
    pub call_overhead: f64,
    /// Kernel launch fixed overhead in cycles (amortized once per launch).
    pub launch_overhead: f64,
}

impl CostModel {
    /// Fermi-calibrated defaults (Tesla C2070 era).
    pub fn fermi() -> Self {
        CostModel {
            issue: 1.0,
            alu_per_inst: 1.0,
            global_latency: 450.0,
            global_per_transaction: 32.0,
            shared_latency: 30.0,
            divergence_replay: 8.0,
            call_overhead: 300.0,
            launch_overhead: 5_000.0,
        }
    }

    /// A unit-cost model for tests: every event costs 1 cycle, launch is
    /// free. Makes cycle totals equal to event totals, so tests can assert
    /// exact arithmetic.
    pub fn unit() -> Self {
        CostModel {
            issue: 1.0,
            alu_per_inst: 1.0,
            global_latency: 1.0,
            global_per_transaction: 1.0,
            shared_latency: 1.0,
            divergence_replay: 1.0,
            call_overhead: 1.0,
            launch_overhead: 0.0,
        }
    }

    /// Issue cycles for a step executing `compute_insts` arithmetic
    /// instructions plus fixed issue.
    pub fn issue_cycles(&self, compute_insts: u64) -> f64 {
        self.issue + self.alu_per_inst * compute_insts as f64
    }

    /// Stall cycles for a warp request that coalesced into `transactions`
    /// global transactions: one full latency, plus a serialization term for
    /// each additional transaction.
    pub fn global_stall(&self, transactions: u64) -> f64 {
        if transactions == 0 {
            0.0
        } else {
            self.global_latency + self.global_per_transaction * (transactions - 1) as f64
        }
    }

    /// Stall cycles for a shared-memory access.
    pub fn shared_stall(&self, transactions: u64) -> f64 {
        self.shared_latency * transactions as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::fermi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_defaults_are_plausible() {
        let c = CostModel::fermi();
        assert!(c.global_latency >= 400.0 && c.global_latency <= 600.0);
        assert!(c.shared_latency < c.global_latency / 10.0);
    }

    #[test]
    fn global_stall_scales_with_transactions() {
        let c = CostModel::fermi();
        assert_eq!(c.global_stall(0), 0.0);
        let one = c.global_stall(1);
        let thirty_two = c.global_stall(32);
        assert_eq!(one, c.global_latency);
        // 32-way serialized access is much more expensive than a broadcast,
        // but not 32 × latency — the controller pipelines.
        assert!(thirty_two > 2.0 * one);
        assert!(thirty_two < 32.0 * one);
    }

    #[test]
    fn unit_model_is_unit() {
        let c = CostModel::unit();
        assert_eq!(c.issue_cycles(3), 4.0);
        assert_eq!(c.global_stall(5), 5.0);
        assert_eq!(c.shared_stall(2), 2.0);
    }
}
