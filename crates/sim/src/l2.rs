//! Optional L2 cache model.
//!
//! Paper §2.2: *“The SMs are connected to a large high-latency,
//! high-throughput global DRAM memory with a hardware-managed level 2
//! cache.”* The default cost model omits the L2 (DRAM-only), which is the
//! conservative configuration the headline results use; enabling the L2
//! (`GpuConfig::with_l2`) shows how caching of the hot tree top levels
//! narrows — but does not close — the coalescing gap between lockstep and
//! non-lockstep traversal. The ablation bench sweeps it.
//!
//! Model: an LRU over 128-byte segments. The real L2 is shared by all SMs
//! and time-interleaved between warps; simulating that faithfully would
//! serialize warp simulation, so each warp sees a *proportional slice* of
//! the cache (capacity ÷ expected resident warps), a standard
//! approximation that keeps the simulation deterministic and parallel.
//! Hits cost [`L2Config::hit_latency`] and do not consume DRAM bandwidth.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// L2 configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// Total cache capacity in bytes (Fermi C2070: 768 KB).
    pub bytes: u64,
    /// Number of concurrent warps the capacity is divided between when
    /// deriving each warp's slice. Fermi: 14 SMs × ~32 hot warps; the
    /// default (448) makes a slice of ~13 segments — only the very top of
    /// the tree stays resident, which is what profiling of traversal
    /// kernels shows.
    pub shared_between_warps: u64,
    /// Cycles for an L2 hit (Fermi ≈ 120, vs. ~450 to DRAM).
    pub hit_latency: f64,
    /// Pipelined cost of each additional hit in the same warp request —
    /// like DRAM transactions, L2 hits overlap; only the first pays full
    /// latency.
    pub per_extra_hit: f64,
}

impl L2Config {
    /// Fermi C2070 defaults.
    pub fn fermi() -> Self {
        L2Config {
            bytes: 768 * 1024,
            shared_between_warps: 448,
            hit_latency: 120.0,
            per_extra_hit: 8.0,
        }
    }

    /// Pipelined stall cycles for `hits` L2 hits in one warp request.
    pub fn hit_stall(&self, hits: u64) -> f64 {
        if hits == 0 {
            0.0
        } else {
            self.hit_latency + self.per_extra_hit * (hits - 1) as f64
        }
    }

    /// Segments in one warp's slice (at least 1).
    pub fn slice_lines(&self, segment_bytes: u64) -> usize {
        ((self.bytes / self.shared_between_warps.max(1)) / segment_bytes.max(1)).max(1) as usize
    }
}

/// A per-warp LRU over segment ids.
#[derive(Debug, Clone)]
pub struct L2Cache {
    capacity: usize,
    tick: u64,
    /// segment id → last-use tick.
    lines: HashMap<u64, u64>,
}

impl L2Cache {
    /// Cache with room for `capacity` segments.
    pub fn new(capacity: usize) -> Self {
        L2Cache {
            capacity: capacity.max(1),
            tick: 0,
            lines: HashMap::with_capacity(capacity + 8),
        }
    }

    /// Touch a segment: returns `true` on a hit. Misses insert the segment,
    /// evicting the least-recently-used line if full.
    pub fn access(&mut self, segment: u64) -> bool {
        self.tick += 1;
        if let Some(t) = self.lines.get_mut(&segment) {
            *t = self.tick;
            return true;
        }
        if self.lines.len() >= self.capacity {
            // Evict the LRU line. Linear scan: slices are tens of lines.
            if let Some((&victim, _)) = self.lines.iter().min_by_key(|(_, &t)| t) {
                self.lines.remove(&victim);
            }
        }
        self.lines.insert(segment, self.tick);
        false
    }

    /// Lines currently resident.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_touch() {
        let mut c = L2Cache::new(4);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert!(c.access(1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = L2Cache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // 1 is now MRU
        assert!(!c.access(3)); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2)); // 2 was evicted
    }

    #[test]
    fn capacity_respected() {
        let mut c = L2Cache::new(8);
        for s in 0..100 {
            c.access(s);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn slice_lines_arithmetic() {
        let cfg = L2Config::fermi();
        // 768 KB / 448 warps / 128 B = 13 lines.
        assert_eq!(cfg.slice_lines(128), 13);
        assert!(
            L2Config {
                bytes: 1,
                shared_between_warps: 1000,
                hit_latency: 1.0,
                per_extra_hit: 1.0
            }
            .slice_lines(128)
                >= 1
        );
    }

    #[test]
    fn hit_stall_is_pipelined() {
        let cfg = L2Config::fermi();
        assert_eq!(cfg.hit_stall(0), 0.0);
        assert_eq!(cfg.hit_stall(1), 120.0);
        // 32 pipelined hits cost far less than 32 serial ones.
        assert!(cfg.hit_stall(32) < 32.0 * 120.0 / 2.0);
    }

    #[test]
    fn loop_over_small_working_set_hits() {
        // A working set within capacity hits forever after warm-up: the
        // "hot tree top" effect.
        let mut c = L2Cache::new(13);
        let mut hits = 0;
        for round in 0..10 {
            for seg in 0..10u64 {
                if c.access(seg) {
                    hits += 1;
                }
                let _ = round;
            }
        }
        assert_eq!(hits, 90); // everything after the first round
    }
}
