//! Left-balanced implicit-layout kd-tree (Wald, arXiv 2210.12859).
//!
//! One data point per node, stored in **heap order**: node `i`'s children
//! are `2i + 1` and `2i + 2`, its parent `(i - 1) / 2`. Because the tree is
//! *left-balanced* (every level full except the last, which fills left to
//! right), the arrays have exactly `n` slots for `n` points — no child
//! indices, no leaf buckets, no pointers at all. A traversal therefore
//! needs no rope stack: its whole state is the pair `(current, previous)`
//! of node indices, which is what makes the stack-free executor in
//! `gts-runtime::gpu::stackless` possible.
//!
//! The split axis cycles with depth (the same convention as
//! [`crate::SplitPolicy::MedianCycle`]); the split plane through node `i`
//! is `points[i][axis]` itself. The builder recursively selects the
//! element whose rank equals the left subtree's size in the left-balanced
//! shape, so the heap layout and the spatial partition coincide.

use crate::geom::PointN;
use crate::{NodeId, NO_NODE};

/// A left-balanced implicit kd-tree over `D`-dimensional points.
#[derive(Debug, Clone)]
pub struct LbKdTree<const D: usize> {
    /// One point per node, in heap order (`points[0]` is the root).
    pub points: Vec<PointN<D>>,
    /// Split axis of each node (`depth % D`).
    pub split_dim: Vec<u8>,
    /// `perm[i]` = index of `points[i]` in the build input.
    pub perm: Vec<u32>,
}

/// Number of nodes in the left subtree of a left-balanced tree of `n`
/// nodes (`n >= 2`): the full levels split evenly and the partial last
/// level fills the left half first.
fn left_size(n: usize) -> usize {
    debug_assert!(n >= 2);
    let h = (usize::BITS - 1 - n.leading_zeros()) as usize; // floor(log2 n)
    let full = (1usize << h) - 1; // nodes strictly above the last level
    let last = n - full; // nodes on the last level
    let half = 1usize << (h - 1); // last-level capacity of the left side
    (full - 1) / 2 + last.min(half)
}

impl<const D: usize> LbKdTree<D> {
    /// Build over `pts`.
    ///
    /// # Panics
    /// Panics if `pts` is empty or any coordinate is non-finite.
    pub fn build(pts: &[PointN<D>]) -> Self {
        assert!(!pts.is_empty(), "lb kd-tree over zero points");
        assert!(
            pts.iter().all(PointN::is_finite),
            "lb kd-tree input contains non-finite coordinates"
        );
        let n = pts.len();
        let mut tree = LbKdTree {
            points: vec![pts[0]; n],
            split_dim: vec![0; n],
            perm: vec![0; n],
        };
        let mut idx: Vec<u32> = (0..n as u32).collect();
        tree.build_rec(pts, &mut idx, 0, 0);
        tree
    }

    fn build_rec(&mut self, pts: &[PointN<D>], idx: &mut [u32], node: usize, depth: usize) {
        let axis = depth % D;
        let chosen = if idx.len() == 1 {
            idx[0]
        } else {
            let ls = left_size(idx.len());
            idx.select_nth_unstable_by(ls, |&a, &b| {
                pts[a as usize][axis].total_cmp(&pts[b as usize][axis])
            });
            idx[ls]
        };
        self.points[node] = pts[chosen as usize];
        self.split_dim[node] = axis as u8;
        self.perm[node] = chosen;
        if idx.len() == 1 {
            return;
        }
        let ls = left_size(idx.len());
        let (left, rest) = idx.split_at_mut(ls);
        let right = &mut rest[1..];
        if !left.is_empty() {
            self.build_rec(pts, left, 2 * node + 1, depth + 1);
        }
        if !right.is_empty() {
            self.build_rec(pts, right, 2 * node + 2, depth + 1);
        }
    }

    /// Number of nodes (= number of points).
    pub fn n_nodes(&self) -> usize {
        self.points.len()
    }

    /// Left child of `n`, or [`NO_NODE`] if out of range.
    pub fn left(&self, n: NodeId) -> NodeId {
        let c = 2 * n as usize + 1;
        if c < self.points.len() {
            c as NodeId
        } else {
            NO_NODE
        }
    }

    /// Right child of `n`, or [`NO_NODE`] if out of range.
    pub fn right(&self, n: NodeId) -> NodeId {
        let c = 2 * n as usize + 2;
        if c < self.points.len() {
            c as NodeId
        } else {
            NO_NODE
        }
    }

    /// Parent of `n`, or [`NO_NODE`] for the root.
    pub fn parent(&self, n: NodeId) -> NodeId {
        if n == 0 {
            NO_NODE
        } else {
            (n - 1) / 2
        }
    }

    /// Is `n` a leaf (no children fit in the array)?
    pub fn is_leaf(&self, n: NodeId) -> bool {
        2 * n as usize + 1 >= self.points.len()
    }

    /// Maximum depth (root = 0): `floor(log2 n)` by left-balance.
    pub fn depth(&self) -> usize {
        (usize::BITS - 1 - self.points.len().leading_zeros()) as usize
    }

    /// Leaf reached by descending split planes from the root (the
    /// implicit-layout analogue of [`crate::KdTree::locate`]): go left
    /// when `p[axis] < points[n][axis]`, right otherwise, skipping to the
    /// sibling when the preferred child does not exist.
    pub fn locate(&self, p: &PointN<D>) -> NodeId {
        let mut n: NodeId = 0;
        loop {
            let axis = self.split_dim[n as usize] as usize;
            let (near, far) = if p[axis] < self.points[n as usize][axis] {
                (self.left(n), self.right(n))
            } else {
                (self.right(n), self.left(n))
            };
            n = if near != NO_NODE {
                near
            } else if far != NO_NODE {
                far
            } else {
                return n;
            };
        }
    }

    /// Check structural invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_nodes();
        if self.split_dim.len() != n || self.perm.len() != n {
            return Err("array length mismatch".into());
        }
        // perm is a permutation.
        let mut seen = vec![false; n];
        for &p in &self.perm {
            let i = p as usize;
            if i >= n || seen[i] {
                return Err(format!("perm entry {p} out of range or duplicated"));
            }
            seen[i] = true;
        }
        // Axis cycles with depth; partition invariant holds per subtree:
        // every node in the left subtree of `i` has coord <= points[i] on
        // i's axis, every node in the right subtree has coord >=.
        fn check<const D: usize>(t: &LbKdTree<D>, node: usize, depth: usize) -> Result<(), String> {
            if node >= t.n_nodes() {
                return Ok(());
            }
            if t.split_dim[node] as usize != depth % D {
                return Err(format!("node {node} axis does not cycle with depth"));
            }
            let axis = depth % D;
            let split = t.points[node][axis];
            let mut stack = vec![(2 * node + 1, true), (2 * node + 2, false)];
            while let Some((i, is_left)) = stack.pop() {
                if i >= t.n_nodes() {
                    continue;
                }
                let c = t.points[i][axis];
                if is_left && c > split {
                    return Err(format!("node {i} in left subtree of {node} crosses plane"));
                }
                if !is_left && c < split {
                    return Err(format!("node {i} in right subtree of {node} crosses plane"));
                }
                stack.push((2 * i + 1, is_left));
                stack.push((2 * i + 2, is_left));
            }
            check(t, 2 * node + 1, depth + 1)?;
            check(t, 2 * node + 2, depth + 1)
        }
        check(self, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::{KdTree, SplitPolicy};
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<PointN<D>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| PointN(std::array::from_fn(|_| rng.gen_range(-100.0..100.0))))
            .collect()
    }

    /// Exact nearest neighbor over the implicit tree by plain recursion —
    /// the reference the stack-free walker must reproduce.
    fn lb_nn<const D: usize>(t: &LbKdTree<D>, q: &PointN<D>) -> f32 {
        fn rec<const D: usize>(t: &LbKdTree<D>, n: NodeId, q: &PointN<D>, best: &mut f32) {
            if n == NO_NODE {
                return;
            }
            let i = n as usize;
            let d2 = t.points[i].dist2(q);
            if d2 < *best {
                *best = d2;
            }
            let axis = t.split_dim[i] as usize;
            let sd = q[axis] - t.points[i][axis];
            let (near, far) = if sd < 0.0 {
                (t.left(n), t.right(n))
            } else {
                (t.right(n), t.left(n))
            };
            rec(t, near, q, best);
            if sd * sd <= *best {
                rec(t, far, q, best);
            }
        }
        let mut best = f32::INFINITY;
        rec(t, 0, q, &mut best);
        best
    }

    #[test]
    fn left_size_matches_heap_shapes() {
        // (n, left subtree size) for small complete trees, by hand.
        for (n, want) in [
            (2, 1),
            (3, 1),
            (4, 2),
            (5, 3),
            (6, 3),
            (7, 3),
            (8, 4),
            (12, 7),
            (15, 7),
        ] {
            assert_eq!(left_size(n), want, "n = {n}");
        }
    }

    #[test]
    fn single_point_tree() {
        let t = LbKdTree::build(&[PointN([1.0, 2.0])]);
        assert_eq!(t.n_nodes(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.parent(0), NO_NODE);
        assert_eq!(t.left(0), NO_NODE);
        t.validate().unwrap();
    }

    #[test]
    fn builds_and_validates() {
        let pts = random_points::<3>(500, 7);
        let t = LbKdTree::build(&pts);
        assert_eq!(t.n_nodes(), 500);
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_points_terminate_and_validate() {
        let pts = vec![PointN([3.0, 3.0]); 100];
        let t = LbKdTree::build(&pts);
        t.validate().unwrap();
        assert_eq!(t.n_nodes(), 100);
    }

    #[test]
    fn locate_returns_a_leaf() {
        let pts = random_points::<2>(400, 8);
        let t = LbKdTree::build(&pts);
        for p in &pts {
            assert!(t.is_leaf(t.locate(p)));
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let t = LbKdTree::build(&random_points::<3>(1024, 9));
        assert_eq!(t.depth(), 10);
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_rejected() {
        let _ = LbKdTree::<2>::build(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let _ = LbKdTree::build(&[PointN([f32::NAN, 0.0])]);
    }

    proptest! {
        #[test]
        fn prop_build_validates(n in 1usize..300, seed in 0u64..500) {
            let pts = random_points::<3>(n, seed);
            let t = LbKdTree::build(&pts);
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
            // perm round-trips the input.
            for (i, &p) in t.perm.iter().enumerate() {
                prop_assert_eq!(t.points[i], pts[p as usize]);
            }
        }

        #[test]
        fn prop_agrees_with_pointer_kdtree(n in 1usize..200, leaf in 1usize..12, seed in 0u64..300) {
            // The implicit layout must answer queries identically to the
            // pointer-based tree built from the same points: exact NN
            // distances agree for every dataset point used as a query.
            let pts = random_points::<3>(n, seed);
            let lb = LbKdTree::build(&pts);
            let kd = KdTree::build(&pts, leaf, SplitPolicy::MedianCycle);
            prop_assert!(lb.validate().is_ok());
            for q in pts.iter().take(32) {
                let want = kd
                    .points
                    .iter()
                    .map(|p| p.dist2(q))
                    .fold(f32::INFINITY, f32::min);
                prop_assert_eq!(lb_nn(&lb, q), want);
            }
            // And locate lands on a leaf whose path respected the planes.
            for q in pts.iter().take(32) {
                prop_assert!(lb.is_leaf(lb.locate(q)));
            }
        }

        #[test]
        fn prop_clustered_duplicates(dups in 1usize..50, uniq in 0usize..50, seed in 0u64..100) {
            let mut pts = vec![PointN([1.0f32, 1.0]); dups];
            pts.extend(random_points::<2>(uniq, seed));
            let t = LbKdTree::build(&pts);
            prop_assert!(t.validate().is_ok());
        }
    }
}
