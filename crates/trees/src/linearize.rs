//! Left-biased linearization checking.
//!
//! Paper §5.2: before the traversal kernel launches, *“an identical
//! linearized copy of the tree is constructed using a left-biased
//! linearization”*. Every builder in this crate emits nodes directly in
//! that order — node ids are a preorder enumeration where each interior
//! node's **first child is `id + 1`** — because the GPU executors' layout
//! arithmetic (`gts-sim` regions indexed by node id) depends on it, and
//! because preorder ids make sorted traversals touch contiguous node
//! ranges (coalescing-friendly).
//!
//! [`check_left_biased`] verifies the invariant for *any* tree shape given
//! its children function — use it when adding a new tree substrate.

use crate::{NodeId, NO_NODE};

/// Apetrei-style skip (escape) links for a binary tree in left-biased
/// preorder, from its right-child array (`NO_NODE` marks leaves):
/// `skip[n]` is the next node in preorder that is *not* in `n`'s subtree —
/// where a traversal resumes after pruning or finishing `n`. The root
/// escapes to `NO_NODE` (traversal over); a left child escapes to its
/// right sibling; a right child escapes wherever its parent does. One
/// O(n) forward pass suffices because preorder puts every parent before
/// its children.
pub fn skip_links(right: &[NodeId]) -> Vec<NodeId> {
    let mut skip = vec![NO_NODE; right.len()];
    for (i, &r) in right.iter().enumerate() {
        if r != NO_NODE {
            skip[i + 1] = r;
            skip[r as usize] = skip[i];
        }
    }
    skip
}

/// Verify a skip-link table against the tree shape: walking `n + 1` on
/// descend and `skip[n]` on escape must enumerate exactly the preorder
/// `0..n_nodes` (the ropes-free traversal contract).
pub fn check_skip_links(right: &[NodeId], skip: &[NodeId]) -> Result<(), String> {
    if skip.len() != right.len() {
        return Err("skip table length mismatch".into());
    }
    let mut n: NodeId = 0;
    let mut expected: NodeId = 0;
    loop {
        if n != expected {
            return Err(format!(
                "skip walk visited {n} where {expected} was expected"
            ));
        }
        expected += 1;
        n = if right[n as usize] != NO_NODE {
            n + 1
        } else {
            skip[n as usize]
        };
        if n == NO_NODE {
            break;
        }
    }
    if expected as usize != right.len() {
        return Err(format!(
            "skip walk covered {expected} of {} nodes",
            right.len()
        ));
    }
    Ok(())
}

/// Verify that node ids `0..n_nodes` form a left-biased preorder: the DFS
/// from the root that always takes children in order assigns exactly the
/// ids `0, 1, 2, …`, and each node's first child is its own id + 1.
pub fn check_left_biased(
    n_nodes: usize,
    children_of: impl Fn(NodeId) -> Vec<NodeId>,
) -> Result<(), String> {
    if n_nodes == 0 {
        return Err("empty tree".into());
    }
    let mut next_expected: NodeId = 0;
    let mut stack: Vec<NodeId> = vec![0];
    let mut visited = 0usize;
    while let Some(id) = stack.pop() {
        if id != next_expected {
            return Err(format!(
                "preorder violated: visited node {id} where {next_expected} was expected"
            ));
        }
        next_expected += 1;
        visited += 1;
        let kids = children_of(id);
        if let Some(&first) = kids.first() {
            if first != id + 1 {
                return Err(format!("node {id}: first child is {first}, not {}", id + 1));
            }
        }
        for &k in kids.iter().rev() {
            if k as usize >= n_nodes {
                return Err(format!("node {id}: child {k} out of range"));
            }
            stack.push(k);
        }
    }
    if visited != n_nodes {
        return Err(format!("DFS reached {visited} of {n_nodes} nodes"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bvh, KdTree, Octree, PointN, SplitPolicy, VpTree, NO_NODE};
    use rand::{Rng, SeedableRng};

    fn pts(n: usize, seed: u64) -> Vec<PointN<3>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| PointN(std::array::from_fn(|_| rng.gen_range(-5.0f32..5.0))))
            .collect()
    }

    #[test]
    fn kd_trees_are_left_biased() {
        for policy in [SplitPolicy::MedianCycle, SplitPolicy::MidpointWidest] {
            let t = KdTree::build(&pts(300, 1), 4, policy);
            check_left_biased(t.n_nodes(), |n| {
                if t.is_leaf(n) {
                    vec![]
                } else {
                    vec![t.left(n), t.right[n as usize]]
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn octree_is_left_biased() {
        let p = pts(300, 2);
        let mass = vec![1.0f32; 300];
        let t = Octree::build(&p, &mass, 4);
        check_left_biased(t.n_nodes(), |n| t.present_children(n).collect()).unwrap();
    }

    #[test]
    fn vp_tree_is_left_biased() {
        let t = VpTree::build(&pts(300, 3), 4);
        check_left_biased(t.n_nodes(), |n| {
            if t.is_leaf(n) {
                vec![]
            } else {
                vec![t.inner(n), t.outer[n as usize]]
            }
        })
        .unwrap();
    }

    #[test]
    fn bvh_is_left_biased() {
        let p = pts(200, 4);
        let tris: Vec<crate::bvh::Triangle> = p
            .windows(3)
            .map(|w| crate::bvh::Triangle {
                a: w[0],
                b: w[1],
                c: w[2],
            })
            .collect();
        let t = Bvh::build(&tris, 4);
        check_left_biased(t.n_nodes(), |n| {
            if t.is_leaf(n) {
                vec![]
            } else {
                vec![t.left(n), t.right[n as usize]]
            }
        })
        .unwrap();
    }

    #[test]
    fn skip_links_enumerate_preorder() {
        for (n, leaf) in [(1usize, 4usize), (7, 1), (300, 4), (500, 8)] {
            let t = KdTree::build(&pts(n, 5), leaf, SplitPolicy::MedianCycle);
            let skip = skip_links(&t.right);
            check_skip_links(&t.right, &skip).unwrap();
            // Root always escapes to the end; a left child escapes to its
            // sibling.
            assert_eq!(skip[0], NO_NODE);
            for i in 0..t.n_nodes() as NodeId {
                if !t.is_leaf(i) {
                    assert_eq!(skip[i as usize + 1], t.right[i as usize]);
                }
            }
        }
    }

    #[test]
    fn detects_right_biased_tree() {
        // 3 nodes where the *right* child is id+1: wrong bias.
        let children = |n: NodeId| -> Vec<NodeId> {
            if n == 0 {
                vec![2, 1] // first child is 2, not 1
            } else {
                vec![]
            }
        };
        let err = check_left_biased(3, children).unwrap_err();
        assert!(err.contains("first child is 2"), "{err}");
        let _ = NO_NODE;
    }

    #[test]
    fn detects_gap_in_preorder() {
        // Node ids skip 1: 0 → [2], 2 → [].
        let children = |n: NodeId| -> Vec<NodeId> {
            if n == 0 {
                vec![2]
            } else {
                vec![]
            }
        };
        assert!(check_left_biased(3, children).is_err());
    }
}
