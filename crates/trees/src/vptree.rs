//! Vantage-point tree (Yianilos, SODA '93 — the paper's reference \[27\]).
//!
//! Each interior node holds a *vantage point* and a *threshold radius*
//! `t` — the median distance from the vantage to the node's points. Points
//! with `dist ≤ t` go to the **inner** child, the rest to the **outer**
//! child. Nearest-neighbor search prunes a child when the query's distance
//! to the vantage proves the child's shell cannot contain a closer point;
//! which child is searched *first* depends on the query, making VP a
//! guided, two-call-set algorithm (paper §6.1.2).
//!
//! Preorder, inner-child-first linearization: `inner(n) == n + 1`.

use crate::geom::PointN;
use crate::{NodeId, NO_NODE};

/// A linearized vantage-point tree, structure-of-arrays.
#[derive(Debug, Clone)]
pub struct VpTree<const D: usize> {
    /// Vantage point of each node (for leaves: unused placeholder).
    pub vantage: Vec<PointN<D>>,
    /// Median-distance threshold (interior nodes).
    pub threshold: Vec<f32>,
    /// Outer child, or [`NO_NODE`] for leaves. Inner child is `n + 1`.
    pub outer: Vec<NodeId>,
    /// First point of the leaf bucket (leaves only).
    pub first: Vec<u32>,
    /// Bucket length; 0 for interior nodes.
    pub count: Vec<u32>,
    /// Points reordered so leaf buckets are contiguous. The vantage point
    /// of every interior node is also stored here (it stays in its
    /// subtree's point set, inner side).
    pub points: Vec<PointN<D>>,
    /// `perm[i]` = original index of `points[i]`.
    pub perm: Vec<u32>,
    /// Maximum bucket size.
    pub leaf_size: usize,
}

impl<const D: usize> VpTree<D> {
    /// Build over `pts` with buckets of at most `leaf_size`.
    ///
    /// The vantage point of each node is chosen deterministically as the
    /// point farthest from the subtree's centroid — a cheap, seedless
    /// stand-in for Yianilos' sampled selection that gives well-spread
    /// shells on clustered data.
    ///
    /// # Panics
    /// Panics on empty input, zero `leaf_size`, or non-finite coordinates.
    pub fn build(pts: &[PointN<D>], leaf_size: usize) -> Self {
        assert!(!pts.is_empty(), "vp-tree over zero points");
        assert!(leaf_size > 0, "leaf_size must be positive");
        assert!(
            pts.iter().all(PointN::is_finite),
            "vp-tree input contains non-finite coordinates"
        );
        let n = pts.len();
        let mut tree = VpTree {
            vantage: Vec::new(),
            threshold: Vec::new(),
            outer: Vec::new(),
            first: Vec::new(),
            count: Vec::new(),
            points: pts.to_vec(),
            perm: (0..n as u32).collect(),
            leaf_size,
        };
        let mut idx: Vec<u32> = (0..n as u32).collect();
        tree.build_rec(pts, &mut idx, 0, 0);
        tree.points = idx.iter().map(|&i| pts[i as usize]).collect();
        tree.perm = idx;
        tree
    }

    fn build_rec(
        &mut self,
        pts: &[PointN<D>],
        idx: &mut [u32],
        offset: u32,
        depth: usize,
    ) -> NodeId {
        let id = self.vantage.len() as NodeId;
        self.vantage.push(PointN::zero());
        self.threshold.push(0.0);
        self.outer.push(NO_NODE);
        self.first.push(offset);
        self.count.push(0);

        // Depth cap guards the all-coincident case, where every distance is
        // zero and the median split cannot separate points.
        if idx.len() <= self.leaf_size || depth >= 64 {
            self.count[id as usize] = idx.len() as u32;
            return id;
        }

        // Vantage = farthest point from centroid.
        let mut centroid = [0.0f64; D];
        for &i in idx.iter() {
            for a in 0..D {
                centroid[a] += pts[i as usize][a] as f64;
            }
        }
        let inv = 1.0 / idx.len() as f64;
        let centroid = PointN(std::array::from_fn(|a| (centroid[a] * inv) as f32));
        let (vslot, _) = idx
            .iter()
            .enumerate()
            .map(|(slot, &i)| (slot, pts[i as usize].dist2(&centroid)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty slice");
        let vantage = pts[idx[vslot] as usize];
        self.vantage[id as usize] = vantage;

        // Median distance threshold: order idx by distance to the vantage;
        // the low half (including the vantage itself at distance 0) goes
        // inner.
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            pts[a as usize]
                .dist2(&vantage)
                .total_cmp(&pts[b as usize].dist2(&vantage))
        });
        let threshold = pts[idx[mid] as usize].dist(&vantage);
        self.threshold[id as usize] = threshold;

        let (inner_idx, outer_idx) = idx.split_at_mut(mid);
        let inner = self.build_rec(pts, inner_idx, offset, depth + 1);
        debug_assert_eq!(inner, id + 1, "inner-first preorder violated");
        let outer = self.build_rec(pts, outer_idx, offset + mid as u32, depth + 1);
        self.outer[id as usize] = outer;
        id
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.vantage.len()
    }

    /// Number of points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Is `n` a leaf?
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.outer[n as usize] == NO_NODE
    }

    /// Inner child of interior node `n` (always `n + 1`).
    pub fn inner(&self, n: NodeId) -> NodeId {
        n + 1
    }

    /// The points of leaf `n`'s bucket.
    pub fn leaf_points(&self, n: NodeId) -> &[PointN<D>] {
        let f = self.first[n as usize] as usize;
        let c = self.count[n as usize] as usize;
        &self.points[f..f + c]
    }

    /// Leaf a query would reach following thresholds (for tree-order
    /// sorting).
    pub fn locate(&self, p: &PointN<D>) -> NodeId {
        let mut n = 0 as NodeId;
        while !self.is_leaf(n) {
            let d = p.dist(&self.vantage[n as usize]);
            n = if d <= self.threshold[n as usize] {
                self.inner(n)
            } else {
                self.outer[n as usize]
            };
        }
        n
    }

    /// Structural invariant check for tests: inner points within threshold
    /// of the vantage, outer points beyond it, leaves partition the set.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_nodes();
        let mut covered = 0usize;
        // Walk with explicit subtree point-ranges.
        let mut stack = vec![(0 as NodeId, 0u32, self.n_points() as u32)];
        let mut visited = vec![false; n];
        while let Some((id, lo, hi)) = stack.pop() {
            let i = id as usize;
            if i >= n {
                return Err(format!("node {id} out of range"));
            }
            if visited[i] {
                return Err(format!("node {id} reachable twice"));
            }
            visited[i] = true;
            if self.is_leaf(id) {
                let f = self.first[i];
                let c = self.count[i];
                if f != lo || f + c != hi {
                    return Err(format!(
                        "leaf {id} bucket [{f}, {}) != subtree range [{lo}, {hi})",
                        f + c
                    ));
                }
                covered += c as usize;
            } else {
                let t = self.threshold[i];
                if !t.is_finite() || t < 0.0 {
                    return Err(format!("node {id} bad threshold {t}"));
                }
                let v = self.vantage[i];
                let mid = lo + (hi - lo) / 2;
                for k in lo..mid {
                    if self.points[k as usize].dist(&v) > t + 1e-4 {
                        return Err(format!("inner point of {id} beyond threshold"));
                    }
                }
                for k in mid..hi {
                    if self.points[k as usize].dist(&v) < t - 1e-4 {
                        return Err(format!("outer point of {id} inside threshold"));
                    }
                }
                stack.push((self.inner(id), lo, mid));
                stack.push((self.outer[i], mid, hi));
            }
        }
        if covered != self.n_points() {
            return Err(format!(
                "leaves cover {covered} of {} points",
                self.n_points()
            ));
        }
        if !visited.iter().all(|&v| v) {
            return Err("unreachable nodes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<PointN<D>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| PointN(std::array::from_fn(|_| rng.gen_range(-50.0..50.0))))
            .collect()
    }

    #[test]
    fn single_point() {
        let t = VpTree::build(&[PointN([1.0, 2.0])], 4);
        assert_eq!(t.n_nodes(), 1);
        assert!(t.is_leaf(0));
        t.validate().unwrap();
    }

    #[test]
    fn vp_tree_validates() {
        let pts = random_points::<7>(400, 11);
        let t = VpTree::build(&pts, 8);
        t.validate().unwrap();
        assert!(t.n_nodes() > 50);
    }

    #[test]
    fn inner_child_is_next_node() {
        let pts = random_points::<2>(200, 12);
        let t = VpTree::build(&pts, 4);
        for id in 0..t.n_nodes() as NodeId {
            if !t.is_leaf(id) {
                assert_eq!(t.inner(id), id + 1);
                assert!(t.outer[id as usize] > id + 1);
            }
        }
    }

    #[test]
    fn coincident_points_terminate() {
        let pts = vec![PointN([0.5, 0.5]); 64];
        let t = VpTree::build(&pts, 4);
        t.validate().unwrap();
        assert_eq!(t.n_points(), 64);
    }

    #[test]
    fn locate_reaches_a_leaf() {
        let pts = random_points::<3>(300, 13);
        let t = VpTree::build(&pts, 8);
        for p in &pts {
            assert!(t.is_leaf(t.locate(p)));
        }
    }

    #[test]
    fn perm_is_permutation() {
        let pts = random_points::<2>(150, 14);
        let t = VpTree::build(&pts, 4);
        let mut seen = vec![false; pts.len()];
        for (&p, pt) in t.perm.iter().zip(&t.points) {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
            assert_eq!(*pt, pts[p as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_rejected() {
        let _ = VpTree::<2>::build(&[], 4);
    }

    proptest! {
        #[test]
        fn prop_vp_invariants(n in 1usize..300, leaf in 1usize..16, seed in 0u64..500) {
            let pts = random_points::<3>(n, seed);
            let t = VpTree::build(&pts, leaf);
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
        }
    }
}
