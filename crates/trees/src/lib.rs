//! # gts-trees — the tree substrates traversed by every benchmark
//!
//! The paper's five benchmarks traverse four different spatial trees:
//!
//! * a **median-split kd-tree** ([`kdtree`]) — Point Correlation and
//!   k-Nearest Neighbor,
//! * a **midpoint-split kd-tree variant** (same module, different
//!   [`kdtree::SplitPolicy`]) — the paper's Nearest Neighbor benchmark is
//!   “a variation of nearest neighbor search with a different
//!   implementation of the kd-tree structure” (§6.1.2),
//! * a **Barnes-Hut oct-tree** ([`octree`]) with centers of mass,
//! * a **vantage-point tree** ([`vptree`]) after Yianilos \[27\].
//!
//! All builders emit nodes directly in **left-biased DFS (preorder)
//! linearization** — the order the paper copies trees to the GPU in (§5.2)
//! — as index-based structure-of-arrays. [`layout`] maps those arrays onto
//! the simulator's address space, including the **hot/cold field split**
//! (`nodes0`/`nodes1`) the paper found optimal: the hot fragment holds what
//! every visit reads (position/bounds + node type), the cold fragment holds
//! what only non-truncated visits read (children indices, leaf buckets).
//!
//! [`geom`] provides the `f32` point/box types shared by all crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bvh;
pub mod geom;
pub mod kdtree;
pub mod layout;
pub mod lbkd;
pub mod linearize;
pub mod octree;
pub mod vptree;

pub use bvh::{Bvh, Triangle};
pub use geom::{Aabb, PointN};
pub use kdtree::{KdTree, SplitPolicy};
pub use layout::{NodeLayout, TreeRegions};
pub use lbkd::LbKdTree;
pub use linearize::check_left_biased;
pub use octree::Octree;
pub use vptree::VpTree;

/// Node identifier within a linearized tree. Index 0 is always the root.
pub type NodeId = u32;

/// Sentinel for "no child".
pub const NO_NODE: NodeId = u32::MAX;
