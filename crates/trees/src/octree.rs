//! Barnes-Hut oct-tree over 3-d bodies.
//!
//! The tree is built over cubic cells: the root cell is the smallest cube
//! containing all bodies; each interior node owns up to eight octant
//! children (absent octants are [`NO_NODE`]). Interior nodes carry their
//! subtree's total mass and center of mass, which is what the Barnes-Hut
//! force traversal reads at every visit (the `far_enough` test against
//! `dsq`, paper Figure 9a). Nodes are emitted in left-biased preorder:
//! child octants are visited in index order 0..8 and the first present
//! child of node `n` is node `n + 1` — the canonical traversal order that
//! makes Barnes-Hut an *unguided* algorithm (§3.2.1).

use crate::geom::PointN;
use crate::{NodeId, NO_NODE};

/// A linearized Barnes-Hut oct-tree, structure-of-arrays.
#[derive(Debug, Clone)]
pub struct Octree {
    /// Center of mass of the subtree.
    pub com: Vec<PointN<3>>,
    /// Total mass of the subtree.
    pub mass: Vec<f32>,
    /// Side length of the node's cubic cell.
    pub size: Vec<f32>,
    /// Eight octant children ([`NO_NODE`] where empty); leaves have none.
    pub children: Vec<[NodeId; 8]>,
    /// First body of the leaf bucket (leaves only).
    pub first: Vec<u32>,
    /// Bucket length; 0 for interior nodes.
    pub count: Vec<u32>,
    /// Body positions, reordered so leaf buckets are contiguous.
    pub bodies: Vec<PointN<3>>,
    /// Body masses in the same order as `bodies`.
    pub masses: Vec<f32>,
    /// `perm[i]` = original index of `bodies[i]`.
    pub perm: Vec<u32>,
    /// Maximum bucket size.
    pub leaf_size: usize,
}

impl Octree {
    /// Build over `positions` with per-body `masses`.
    ///
    /// # Panics
    /// Panics on empty input, mismatched lengths, zero `leaf_size`, or
    /// non-finite coordinates.
    pub fn build(positions: &[PointN<3>], masses: &[f32], leaf_size: usize) -> Self {
        assert!(!positions.is_empty(), "oct-tree over zero bodies");
        assert_eq!(
            positions.len(),
            masses.len(),
            "positions/masses length mismatch"
        );
        assert!(leaf_size > 0, "leaf_size must be positive");
        assert!(
            positions.iter().all(PointN::is_finite),
            "oct-tree input contains non-finite coordinates"
        );

        // Root cube: center of the bounding box, side = max extent (plus a
        // hair so boundary bodies land strictly inside an octant).
        let bbox = crate::geom::Aabb::of_points(positions);
        let center = bbox.center();
        let side = (0..3)
            .map(|a| bbox.extent(a))
            .fold(0.0f32, f32::max)
            .max(f32::MIN_POSITIVE)
            * 1.0001;

        let mut tree = Octree {
            com: Vec::new(),
            mass: Vec::new(),
            size: Vec::new(),
            children: Vec::new(),
            first: Vec::new(),
            count: Vec::new(),
            bodies: positions.to_vec(),
            masses: masses.to_vec(),
            perm: (0..positions.len() as u32).collect(),
            leaf_size,
        };
        let mut idx: Vec<u32> = (0..positions.len() as u32).collect();
        tree.build_rec(positions, masses, &mut idx, 0, center, side, 0);
        tree.bodies = idx.iter().map(|&i| positions[i as usize]).collect();
        tree.masses = idx.iter().map(|&i| masses[i as usize]).collect();
        tree.perm = idx;
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build_rec(
        &mut self,
        pos: &[PointN<3>],
        mass: &[f32],
        idx: &mut [u32],
        offset: u32,
        center: PointN<3>,
        side: f32,
        depth: usize,
    ) -> NodeId {
        let id = self.com.len() as NodeId;
        // Aggregate mass and center of mass over the slice.
        let mut m_total = 0.0f64;
        let mut c = [0.0f64; 3];
        for &i in idx.iter() {
            let w = mass[i as usize] as f64;
            m_total += w;
            for a in 0..3 {
                c[a] += pos[i as usize][a] as f64 * w;
            }
        }
        let com = if m_total > 0.0 {
            PointN([
                (c[0] / m_total) as f32,
                (c[1] / m_total) as f32,
                (c[2] / m_total) as f32,
            ])
        } else {
            center
        };
        self.com.push(com);
        self.mass.push(m_total as f32);
        self.size.push(side);
        self.children.push([NO_NODE; 8]);
        self.first.push(offset);
        self.count.push(0);

        // Bodies at identical positions cannot be separated by subdivision;
        // the depth cap turns pathological spots into (oversized) leaves,
        // matching production BH codes.
        if idx.len() <= self.leaf_size || depth >= 64 {
            self.count[id as usize] = idx.len() as u32;
            return id;
        }

        // Partition the slice into the eight octants around `center`.
        let octant = |p: &PointN<3>| -> usize {
            (usize::from(p[0] >= center[0]))
                | (usize::from(p[1] >= center[1]) << 1)
                | (usize::from(p[2] >= center[2]) << 2)
        };
        // Counting sort over 8 buckets, stable enough for our purposes.
        let mut counts = [0usize; 8];
        for &i in idx.iter() {
            counts[octant(&pos[i as usize])] += 1;
        }
        let mut starts = [0usize; 8];
        let mut acc = 0;
        for o in 0..8 {
            starts[o] = acc;
            acc += counts[o];
        }
        let mut scratch = vec![0u32; idx.len()];
        let mut cursors = starts;
        for &i in idx.iter() {
            let o = octant(&pos[i as usize]);
            scratch[cursors[o]] = i;
            cursors[o] += 1;
        }
        idx.copy_from_slice(&scratch);

        let half = side * 0.5;
        let quarter = side * 0.25;
        for o in 0..8 {
            if counts[o] == 0 {
                continue;
            }
            let child_center = PointN([
                center[0] + if o & 1 != 0 { quarter } else { -quarter },
                center[1] + if o & 2 != 0 { quarter } else { -quarter },
                center[2] + if o & 4 != 0 { quarter } else { -quarter },
            ]);
            let child = self.build_rec(
                pos,
                mass,
                &mut idx[starts[o]..starts[o] + counts[o]],
                offset + starts[o] as u32,
                child_center,
                half,
                depth + 1,
            );
            self.children[id as usize][o] = child;
        }
        id
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.com.len()
    }

    /// Number of bodies.
    pub fn n_bodies(&self) -> usize {
        self.bodies.len()
    }

    /// Is `n` a leaf?
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.count[n as usize] > 0 || self.children[n as usize] == [NO_NODE; 8]
    }

    /// Present children of `n`, in canonical octant order.
    pub fn present_children(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children[n as usize]
            .into_iter()
            .filter(|&c| c != NO_NODE)
    }

    /// The bodies of leaf `n`'s bucket, with their masses.
    pub fn leaf_bodies(&self, n: NodeId) -> (&[PointN<3>], &[f32]) {
        let f = self.first[n as usize] as usize;
        let c = self.count[n as usize] as usize;
        (&self.bodies[f..f + c], &self.masses[f..f + c])
    }

    /// Structural invariant check for tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_nodes();
        let mut stack = vec![0 as NodeId];
        let mut visited = vec![false; n];
        let mut covered = 0usize;
        while let Some(id) = stack.pop() {
            let i = id as usize;
            if i >= n {
                return Err(format!("node {id} out of range"));
            }
            if visited[i] {
                return Err(format!("node {id} reachable twice"));
            }
            visited[i] = true;
            if self.mass[i] < 0.0 || !self.mass[i].is_finite() {
                return Err(format!("node {id} has bad mass {}", self.mass[i]));
            }
            if self.is_leaf(id) {
                covered += self.count[i] as usize;
            } else {
                // Child masses must sum to this node's mass.
                let child_mass: f32 = self
                    .present_children(id)
                    .map(|c| self.mass[c as usize])
                    .sum();
                if (child_mass - self.mass[i]).abs() > 1e-3 * self.mass[i].max(1.0) {
                    return Err(format!(
                        "node {id} mass {} != children sum {child_mass}",
                        self.mass[i]
                    ));
                }
                // Preorder: first present child is id + 1.
                if let Some(first_child) = self.present_children(id).next() {
                    if first_child != id + 1 {
                        return Err(format!("node {id} first child {first_child} != {}", id + 1));
                    }
                }
                for c in self.present_children(id) {
                    if self.size[c as usize] > self.size[i] * 0.5 + 1e-6 {
                        return Err(format!("child {c} cell not halved"));
                    }
                    stack.push(c);
                }
            }
        }
        if covered != self.n_bodies() {
            return Err(format!(
                "leaves cover {covered} of {} bodies",
                self.n_bodies()
            ));
        }
        if !visited.iter().all(|&v| v) {
            return Err("unreachable nodes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_bodies(n: usize, seed: u64) -> (Vec<PointN<3>>, Vec<f32>) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let pos = (0..n)
            .map(|_| PointN(std::array::from_fn(|_| rng.gen_range(-10.0..10.0))))
            .collect();
        let mass = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
        (pos, mass)
    }

    #[test]
    fn single_body() {
        let t = Octree::build(&[PointN([1.0, 2.0, 3.0])], &[5.0], 4);
        assert_eq!(t.n_nodes(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.mass[0], 5.0);
        assert_eq!(t.com[0], PointN([1.0, 2.0, 3.0]));
        t.validate().unwrap();
    }

    #[test]
    fn mass_conservation() {
        let (pos, mass) = random_bodies(1000, 7);
        let t = Octree::build(&pos, &mass, 8);
        let total: f32 = mass.iter().sum();
        assert!((t.mass[0] - total).abs() < 1e-2);
        t.validate().unwrap();
    }

    #[test]
    fn com_matches_direct_computation() {
        let pos = vec![PointN([0.0, 0.0, 0.0]), PointN([2.0, 0.0, 0.0])];
        let mass = vec![1.0, 3.0];
        let t = Octree::build(&pos, &mass, 1);
        assert!((t.com[0][0] - 1.5).abs() < 1e-6);
        assert_eq!(t.mass[0], 4.0);
    }

    #[test]
    fn coincident_bodies_terminate() {
        let pos = vec![PointN([1.0, 1.0, 1.0]); 50];
        let mass = vec![1.0; 50];
        let t = Octree::build(&pos, &mass, 4);
        t.validate().unwrap();
        assert_eq!(t.n_bodies(), 50);
    }

    #[test]
    fn children_in_octant_order_and_preorder() {
        let (pos, mass) = random_bodies(200, 8);
        let t = Octree::build(&pos, &mass, 4);
        t.validate().unwrap();
        for nid in 0..t.n_nodes() as NodeId {
            if !t.is_leaf(nid) {
                let kids: Vec<NodeId> = t.present_children(nid).collect();
                // Present children have strictly increasing ids (preorder).
                for w in kids.windows(2) {
                    assert!(w[0] < w[1]);
                }
            }
        }
    }

    #[test]
    fn leaf_buckets_partition_bodies() {
        let (pos, mass) = random_bodies(300, 9);
        let t = Octree::build(&pos, &mass, 8);
        let mut covered = vec![false; 300];
        for nid in 0..t.n_nodes() as NodeId {
            if t.is_leaf(nid) {
                let f = t.first[nid as usize] as usize;
                for c in covered
                    .iter_mut()
                    .skip(f)
                    .take(t.count[nid as usize] as usize)
                {
                    assert!(!*c);
                    *c = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    #[should_panic(expected = "zero bodies")]
    fn empty_rejected() {
        let _ = Octree::build(&[], &[], 4);
    }

    proptest! {
        #[test]
        fn prop_octree_invariants(n in 1usize..300, leaf in 1usize..16, seed in 0u64..500) {
            let (pos, mass) = random_bodies(n, seed);
            let t = Octree::build(&pos, &mass, leaf);
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
        }
    }
}
