//! GPU memory layout of linearized trees: hot/cold field splitting.
//!
//! Paper §5.2: *“We have found that the optimal way to organize nodes is to
//! split the original structure into sets of fields based on usage patterns
//! in the traversal. For example, in our transformed Barnes-Hut kernel we
//! load a partial node that only contains the position vector of the
//! current node and its type (line 9). If the termination condition is not
//! met then we continue with the traversal and load another partial node
//! (line 11) that contains the indices of the nodes' children.”*
//!
//! Every traversal executor loads the **hot fragment** (`nodes0`) at each
//! visit and the **cold fragment** (`nodes1`) only when it actually
//! recurses. [`NodeLayout::Monolithic`] is the ablation baseline: one fat
//! record holding everything, loaded whole at every visit.

use serde::{Deserialize, Serialize};

use gts_sim::{AddressMap, MemSpace, RegionId};

/// How node records are laid out in simulated global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeLayout {
    /// One record per node containing every field; each visit loads it all.
    Monolithic,
    /// Hot fields (`nodes0`: truncation-test data + type) separate from
    /// cold fields (`nodes1`: children indices, bucket ranges); visits load
    /// `nodes0`, only non-truncated visits load `nodes1`. The paper's
    /// chosen layout.
    HotColdSplit,
}

/// Byte sizes of a tree's node fragments and leaf payload elements.
///
/// These are what the *GPU copy* of the tree would occupy — computed from
/// field counts, not from Rust struct sizes (the host-side SoA layout is a
/// build-time convenience and is not what the kernel addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeBytes {
    /// Hot fragment bytes per node.
    pub hot: u64,
    /// Cold fragment bytes per node.
    pub cold: u64,
    /// Bytes per leaf-bucket element (a point, or a body record).
    pub leaf_elem: u64,
}

impl NodeBytes {
    /// kd-tree fragments for `D`-dimensional points: hot = bbox (2·D·4) +
    /// split value + packed split-dim/leaf flag; cold = right-child index +
    /// bucket first/count (left child is implicit, `n + 1`).
    pub fn kd(d: usize) -> NodeBytes {
        NodeBytes {
            hot: (2 * d as u64) * 4 + 4 + 4,
            cold: 4 + 4 + 4,
            leaf_elem: d as u64 * 4,
        }
    }

    /// Oct-tree fragments: hot = center of mass (12) + mass (4) + cell size
    /// (4) + type (4), matching Figure 9b's `nodes0`; cold = eight child
    /// indices (32) + bucket first/count, Figure 9b's `nodes1`.
    pub fn oct() -> NodeBytes {
        NodeBytes {
            hot: 12 + 4 + 4 + 4,
            cold: 32 + 8,
            leaf_elem: 16, // position + mass
        }
    }

    /// VP-tree fragments: hot = vantage point (D·4) + threshold + type;
    /// cold = outer-child index + bucket first/count.
    pub fn vp(d: usize) -> NodeBytes {
        NodeBytes {
            hot: d as u64 * 4 + 4 + 4,
            cold: 4 + 4 + 4,
            leaf_elem: d as u64 * 4,
        }
    }

    /// Bytes loaded at a visit that truncates, under `layout`.
    pub fn visit_bytes(&self, layout: NodeLayout) -> u64 {
        match layout {
            NodeLayout::Monolithic => self.hot + self.cold,
            NodeLayout::HotColdSplit => self.hot,
        }
    }
}

/// The simulated-memory regions of one tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeRegions {
    /// Hot node fragments (or the whole record when monolithic).
    pub nodes0: RegionId,
    /// Cold node fragments (`None` when monolithic — everything came in
    /// with the `nodes0` load).
    pub nodes1: Option<RegionId>,
    /// Leaf-bucket payload elements.
    pub leaf_elems: RegionId,
    /// The layout these regions encode.
    pub layout: NodeLayout,
}

impl TreeRegions {
    /// Allocate regions for a tree of `n_nodes` nodes and `n_leaf_elems`
    /// leaf payload elements with fragment sizes `bytes`, under `layout`.
    /// `prefix` names the regions ("kd", "oct", ...).
    pub fn alloc(
        map: &mut AddressMap,
        prefix: &str,
        bytes: NodeBytes,
        layout: NodeLayout,
        n_nodes: u64,
        n_leaf_elems: u64,
    ) -> TreeRegions {
        match layout {
            NodeLayout::Monolithic => {
                let nodes0 = map.alloc(
                    format!("{prefix}.nodes"),
                    MemSpace::Global,
                    n_nodes,
                    bytes.hot + bytes.cold,
                );
                let leaf_elems = map.alloc(
                    format!("{prefix}.leaf_elems"),
                    MemSpace::Global,
                    n_leaf_elems,
                    bytes.leaf_elem,
                );
                TreeRegions {
                    nodes0,
                    nodes1: None,
                    leaf_elems,
                    layout,
                }
            }
            NodeLayout::HotColdSplit => {
                let nodes0 = map.alloc(
                    format!("{prefix}.nodes0"),
                    MemSpace::Global,
                    n_nodes,
                    bytes.hot,
                );
                let nodes1 = map.alloc(
                    format!("{prefix}.nodes1"),
                    MemSpace::Global,
                    n_nodes,
                    bytes.cold,
                );
                let leaf_elems = map.alloc(
                    format!("{prefix}.leaf_elems"),
                    MemSpace::Global,
                    n_leaf_elems,
                    bytes.leaf_elem,
                );
                TreeRegions {
                    nodes0,
                    nodes1: Some(nodes1),
                    leaf_elems,
                    layout,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kd_fragment_sizes() {
        let b = NodeBytes::kd(7);
        assert_eq!(b.hot, 7 * 8 + 8); // 64
        assert_eq!(b.cold, 12);
        assert_eq!(b.leaf_elem, 28);
        assert_eq!(b.visit_bytes(NodeLayout::HotColdSplit), 64);
        assert_eq!(b.visit_bytes(NodeLayout::Monolithic), 76);
    }

    #[test]
    fn oct_fragments_match_figure_9() {
        let b = NodeBytes::oct();
        // nodes0: position vector + type (+mass/size), one 24 B record —
        // under the 128 B segment, five hot nodes share a segment.
        assert_eq!(b.hot, 24);
        assert_eq!(b.cold, 40);
    }

    #[test]
    fn hot_cold_alloc_creates_two_node_regions() {
        let mut map = AddressMap::new();
        let r = TreeRegions::alloc(
            &mut map,
            "kd",
            NodeBytes::kd(2),
            NodeLayout::HotColdSplit,
            100,
            500,
        );
        assert!(r.nodes1.is_some());
        let names: Vec<&str> = map.regions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["kd.nodes0", "kd.nodes1", "kd.leaf_elems"]);
        assert_eq!(map.region(r.nodes0).stride, NodeBytes::kd(2).hot);
    }

    #[test]
    fn monolithic_alloc_folds_fragments() {
        let mut map = AddressMap::new();
        let r = TreeRegions::alloc(
            &mut map,
            "oct",
            NodeBytes::oct(),
            NodeLayout::Monolithic,
            10,
            10,
        );
        assert!(r.nodes1.is_none());
        assert_eq!(map.region(r.nodes0).stride, 64);
    }
}
