//! Fixed-dimension points and axis-aligned boxes.
//!
//! `f32` throughout — the paper's GPU kernels are single-precision, and the
//! benchmarks' truncation tests (radius checks, opening criteria) tolerate
//! single precision. Dimension is a const generic so the 7-d data-mining
//! inputs, 3-d n-body and 2-d Geocity instantiate separate, fully
//! monomorphized code paths, exactly as templated C++ would.

use std::ops::{Index, IndexMut};

/// A point in `D`-dimensional space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointN<const D: usize>(pub [f32; D]);

impl<const D: usize> PointN<D> {
    /// The origin.
    pub fn zero() -> Self {
        PointN([0.0; D])
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2(&self, other: &PointN<D>) -> f32 {
        let mut s = 0.0;
        for i in 0..D {
            let d = self.0[i] - other.0[i];
            s += d * d;
        }
        s
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &PointN<D>) -> f32 {
        self.dist2(other).sqrt()
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &PointN<D>) -> PointN<D> {
        PointN(std::array::from_fn(|i| self.0[i].min(other.0[i])))
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &PointN<D>) -> PointN<D> {
        PointN(std::array::from_fn(|i| self.0[i].max(other.0[i])))
    }

    /// Add `other` scaled by `s` (used by the n-body integrator).
    pub fn add_scaled(&self, other: &PointN<D>, s: f32) -> PointN<D> {
        PointN(std::array::from_fn(|i| self.0[i] + other.0[i] * s))
    }

    /// All coordinates finite?
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|c| c.is_finite())
    }
}

impl<const D: usize> Index<usize> for PointN<D> {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.0[i]
    }
}

impl<const D: usize> IndexMut<usize> for PointN<D> {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.0[i]
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb<const D: usize> {
    /// Minimum corner.
    pub lo: PointN<D>,
    /// Maximum corner.
    pub hi: PointN<D>,
}

impl<const D: usize> Aabb<D> {
    /// The degenerate box containing exactly `p`.
    pub fn point(p: PointN<D>) -> Self {
        Aabb { lo: p, hi: p }
    }

    /// An "empty" box that grows correctly under [`Aabb::grow`].
    pub fn empty() -> Self {
        Aabb {
            lo: PointN([f32::INFINITY; D]),
            hi: PointN([f32::NEG_INFINITY; D]),
        }
    }

    /// Smallest box containing all of `pts`. Returns [`Aabb::empty`] for an
    /// empty slice.
    pub fn of_points(pts: &[PointN<D>]) -> Self {
        pts.iter().fold(Self::empty(), |b, p| b.grow(*p))
    }

    /// Expand to contain `p`.
    pub fn grow(&self, p: PointN<D>) -> Self {
        Aabb {
            lo: self.lo.min(&p),
            hi: self.hi.max(&p),
        }
    }

    /// Expand to contain `other`.
    pub fn union(&self, other: &Aabb<D>) -> Self {
        Aabb {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Does the box contain `p` (inclusive)?
    pub fn contains(&self, p: &PointN<D>) -> bool {
        (0..D).all(|i| self.lo[i] <= p[i] && p[i] <= self.hi[i])
    }

    /// Squared distance from `p` to the closest point of the box; zero when
    /// `p` is inside. This is the truncation test of Point Correlation and
    /// the pruning test of kNN (`can_correlate` in the paper's Figure 4).
    pub fn dist2_to(&self, p: &PointN<D>) -> f32 {
        let mut s = 0.0;
        for i in 0..D {
            let d = if p[i] < self.lo[i] {
                self.lo[i] - p[i]
            } else if p[i] > self.hi[i] {
                p[i] - self.hi[i]
            } else {
                0.0
            };
            s += d * d;
        }
        s
    }

    /// Squared distance from `p` to the *farthest* point of the box — an
    /// upper bound on the distance from `p` to every point inside. The
    /// dual of [`Aabb::dist2_to`]: a shard whose farthest corner is closer
    /// than another shard's nearest corner makes the latter irrelevant,
    /// which is what the sharded index's dispatch-time pruning exploits.
    ///
    /// Soundness in f32 mirrors `dist2_to`: per axis the chosen corner
    /// offset dominates `|p[i] - x[i]|` for every `x` in the box in exact
    /// arithmetic, and rounding is monotone through the subtraction,
    /// square, and sum, so the result upper-bounds any `p.dist2(x)`
    /// computed the same way.
    pub fn max_dist2_to(&self, p: &PointN<D>) -> f32 {
        let mut s = 0.0;
        for i in 0..D {
            let d = (p[i] - self.lo[i]).abs().max((self.hi[i] - p[i]).abs());
            s += d * d;
        }
        s
    }

    /// Extent along axis `axis`.
    pub fn extent(&self, axis: usize) -> f32 {
        self.hi[axis] - self.lo[axis]
    }

    /// Axis with the largest extent (ties break low).
    pub fn widest_axis(&self) -> usize {
        let mut best = 0;
        let mut w = self.extent(0);
        for a in 1..D {
            let e = self.extent(a);
            if e > w {
                w = e;
                best = a;
            }
        }
        best
    }

    /// Midpoint along `axis`.
    pub fn mid(&self, axis: usize) -> f32 {
        0.5 * (self.lo[axis] + self.hi[axis])
    }

    /// Center point of the box.
    pub fn center(&self) -> PointN<D> {
        PointN(std::array::from_fn(|i| 0.5 * (self.lo[i] + self.hi[i])))
    }

    /// True if `lo <= hi` on all axes (empty boxes are not valid).
    pub fn is_valid(&self) -> bool {
        (0..D).all(|i| self.lo[i] <= self.hi[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_basic() {
        let a = PointN([0.0, 0.0, 0.0]);
        let b = PointN([1.0, 2.0, 2.0]);
        assert_eq!(a.dist2(&b), 9.0);
        assert_eq!(a.dist(&b), 3.0);
    }

    #[test]
    fn aabb_of_points_contains_all() {
        let pts = [PointN([1.0, -2.0]), PointN([3.0, 5.0]), PointN([-1.0, 0.0])];
        let b = Aabb::of_points(&pts);
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.lo, PointN([-1.0, -2.0]));
        assert_eq!(b.hi, PointN([3.0, 5.0]));
    }

    #[test]
    fn dist2_to_box_inside_is_zero() {
        let b = Aabb {
            lo: PointN([0.0, 0.0]),
            hi: PointN([2.0, 2.0]),
        };
        assert_eq!(b.dist2_to(&PointN([1.0, 1.0])), 0.0);
        assert_eq!(b.dist2_to(&PointN([0.0, 2.0])), 0.0); // boundary
        assert_eq!(b.dist2_to(&PointN([3.0, 2.0])), 1.0);
        assert_eq!(b.dist2_to(&PointN([3.0, 4.0])), 5.0);
    }

    #[test]
    fn max_dist2_to_bounds_every_corner_and_interior_point() {
        let b = Aabb {
            lo: PointN([0.0, 0.0]),
            hi: PointN([2.0, 4.0]),
        };
        // Inside: farthest corner is (2, 4) from the origin corner.
        assert_eq!(b.max_dist2_to(&PointN([0.0, 0.0])), 4.0 + 16.0);
        // Center: farthest corner is any corner.
        assert_eq!(b.max_dist2_to(&PointN([1.0, 2.0])), 1.0 + 4.0);
        // Outside: still the farthest corner.
        assert_eq!(b.max_dist2_to(&PointN([3.0, 5.0])), 9.0 + 25.0);
        // Upper bound on every contained point, lower bound never exceeds it.
        for p in [PointN([0.3, 1.7]), PointN([2.0, 0.0]), PointN([-1.0, 6.0])] {
            for x in [PointN([0.0, 0.0]), PointN([2.0, 4.0]), PointN([1.0, 3.0])] {
                assert!(b.max_dist2_to(&p) >= p.dist2(&x));
            }
            assert!(b.dist2_to(&p) <= b.max_dist2_to(&p));
        }
        // Degenerate box equal to the query: both bounds collapse to zero.
        let pt = Aabb::point(PointN([1.0, 1.0]));
        assert_eq!(pt.max_dist2_to(&PointN([1.0, 1.0])), 0.0);
    }

    #[test]
    fn widest_axis_and_mid() {
        let b = Aabb {
            lo: PointN([0.0, 0.0, -5.0]),
            hi: PointN([1.0, 4.0, -1.0]),
        };
        assert_eq!(b.widest_axis(), 1);
        assert_eq!(b.mid(2), -3.0);
    }

    #[test]
    fn empty_box_grows() {
        let b = Aabb::<3>::empty();
        assert!(!b.is_valid());
        let b = b.grow(PointN([1.0, 2.0, 3.0]));
        assert!(b.is_valid());
        assert_eq!(b.lo, b.hi);
    }

    #[test]
    fn union_commutes() {
        let a = Aabb::point(PointN([0.0, 1.0])).grow(PointN([2.0, 2.0]));
        let b = Aabb::point(PointN([-1.0, 5.0]));
        assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn add_scaled() {
        let p = PointN([1.0, 1.0]).add_scaled(&PointN([2.0, -4.0]), 0.5);
        assert_eq!(p, PointN([2.0, -1.0]));
    }
}
