//! kd-trees in left-biased preorder linearization.
//!
//! Two build policies cover the paper's two kd-tree benchmarks:
//!
//! * [`SplitPolicy::MedianCycle`] — cycle the split axis with depth, split
//!   at the coordinate median. Used by Point Correlation and kNN.
//! * [`SplitPolicy::MidpointWidest`] — split the widest bounding-box axis
//!   at its midpoint (falling back to a median split when one side would
//!   be empty). This is the “different implementation of the kd-tree
//!   structure” behind the paper's separate NN benchmark (§6.1.2): it
//!   produces different shapes, different traversal lengths, and supports
//!   split-plane pruning rather than bbox pruning.
//!
//! Nodes are emitted in **preorder with the left child first** so that
//! `left(n) == n + 1` for every interior node — the paper's left-biased
//! linearization (§5.2). Only the right child index is stored.

use serde::{Deserialize, Serialize};

use crate::geom::{Aabb, PointN};
use crate::{NodeId, NO_NODE};

/// How interior nodes choose their split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// Axis = depth mod D; split at the median coordinate.
    MedianCycle,
    /// Axis = widest bbox axis; split at the bbox midpoint, median fallback.
    MidpointWidest,
}

/// A linearized kd-tree over `D`-dimensional points, structure-of-arrays.
///
/// Index 0 is the root; interior node `n` has its left child at `n + 1`
/// and its right child at `right[n]`. Leaves own a contiguous bucket
/// `points[first[n] .. first[n] + count[n]]` of the (reordered) input.
#[derive(Debug, Clone)]
pub struct KdTree<const D: usize> {
    /// Per-node bounding-box minimum corner.
    pub bbox_lo: Vec<PointN<D>>,
    /// Per-node bounding-box maximum corner.
    pub bbox_hi: Vec<PointN<D>>,
    /// Split axis (meaningful for interior nodes only).
    pub split_dim: Vec<u8>,
    /// Split coordinate (meaningful for interior nodes only).
    pub split_val: Vec<f32>,
    /// Right child, or [`NO_NODE`] for leaves.
    pub right: Vec<NodeId>,
    /// Apetrei-style escape link: the next preorder node outside `n`'s
    /// subtree, or [`NO_NODE`] past the last. Enables the ropes-free
    /// stackless walk (`next = descend ? n + 1 : skip[n]`).
    pub skip: Vec<NodeId>,
    /// First point of the leaf bucket (leaves only).
    pub first: Vec<u32>,
    /// Bucket length; 0 for interior nodes.
    pub count: Vec<u32>,
    /// Input points, reordered so every leaf bucket is contiguous.
    pub points: Vec<PointN<D>>,
    /// `perm[i]` = original index of `points[i]`.
    pub perm: Vec<u32>,
    /// Policy the tree was built with.
    pub policy: SplitPolicy,
    /// Maximum bucket size.
    pub leaf_size: usize,
}

impl<const D: usize> KdTree<D> {
    /// Build a kd-tree over `pts` with buckets of at most `leaf_size`.
    ///
    /// # Panics
    /// Panics if `pts` is empty, `leaf_size` is 0, or any coordinate is
    /// non-finite (NaN would corrupt the median partition).
    pub fn build(pts: &[PointN<D>], leaf_size: usize, policy: SplitPolicy) -> Self {
        assert!(!pts.is_empty(), "kd-tree over zero points");
        assert!(leaf_size > 0, "leaf_size must be positive");
        assert!(
            pts.iter().all(PointN::is_finite),
            "kd-tree input contains non-finite coordinates"
        );
        let n = pts.len();
        let mut tree = KdTree {
            bbox_lo: Vec::new(),
            bbox_hi: Vec::new(),
            split_dim: Vec::new(),
            split_val: Vec::new(),
            right: Vec::new(),
            skip: Vec::new(),
            first: Vec::new(),
            count: Vec::new(),
            points: pts.to_vec(),
            perm: (0..n as u32).collect(),
            policy,
            leaf_size,
        };
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let bbox = Aabb::of_points(pts);
        tree.build_rec(pts, &mut idx, 0, bbox, 0);
        // Reorder points so leaf buckets are contiguous: `idx` is now the
        // leaf-order permutation.
        tree.points = idx.iter().map(|&i| pts[i as usize]).collect();
        tree.perm = idx;
        tree.skip = crate::linearize::skip_links(&tree.right);
        tree
    }

    /// Recursive preorder build over the index slice `idx[lo..]`; returns
    /// the id of the subtree root. `offset` is the absolute position of
    /// `idx[0]` within the full index array (for leaf `first` values).
    fn build_rec(
        &mut self,
        pts: &[PointN<D>],
        idx: &mut [u32],
        offset: u32,
        bbox: Aabb<D>,
        depth: usize,
    ) -> NodeId {
        let id = self.bbox_lo.len() as NodeId;
        self.bbox_lo.push(bbox.lo);
        self.bbox_hi.push(bbox.hi);
        self.split_dim.push(0);
        self.split_val.push(0.0);
        self.right.push(NO_NODE);
        self.first.push(offset);
        self.count.push(0);

        if idx.len() <= self.leaf_size {
            self.count[id as usize] = idx.len() as u32;
            return id;
        }

        let (axis, mid) = self.partition(pts, idx, &bbox, depth);
        self.split_dim[id as usize] = axis as u8;
        // Split value: the plane between the two halves. For the median
        // policy the pivot element sits at the start of the right half;
        // left coords are <= pivot, right coords >= pivot, which is what
        // split-plane pruning needs.
        let split_val = pts[idx[mid] as usize][axis];
        self.split_val[id as usize] = split_val;

        let tight_left = Aabb::of_points_idx(pts, &idx[..mid]);
        let tight_right = Aabb::of_points_idx(pts, &idx[mid..]);
        let (l, r) = idx.split_at_mut(mid);
        let left_id = self.build_rec(pts, l, offset, tight_left, depth + 1);
        debug_assert_eq!(left_id, id + 1, "left-biased preorder violated");
        let right_id = self.build_rec(pts, r, offset + mid as u32, tight_right, depth + 1);
        self.right[id as usize] = right_id;
        id
    }

    /// Choose an axis and partition `idx` around it; returns `(axis, mid)`
    /// where `idx[..mid]` goes left. Guarantees `0 < mid < idx.len()`.
    fn partition(
        &self,
        pts: &[PointN<D>],
        idx: &mut [u32],
        bbox: &Aabb<D>,
        depth: usize,
    ) -> (usize, usize) {
        match self.policy {
            SplitPolicy::MedianCycle => {
                let axis = depth % D;
                let mid = idx.len() / 2;
                idx.select_nth_unstable_by(mid, |&a, &b| {
                    pts[a as usize][axis].total_cmp(&pts[b as usize][axis])
                });
                (axis, mid)
            }
            SplitPolicy::MidpointWidest => {
                let axis = bbox.widest_axis();
                let plane = bbox.mid(axis);
                let mid = partition_in_place(idx, |&i| pts[i as usize][axis] < plane);
                if mid == 0 || mid == idx.len() {
                    // All points on one side of the midpoint (duplicates or
                    // heavy clustering): fall back to a median split so the
                    // recursion always makes progress.
                    let mid = idx.len() / 2;
                    idx.select_nth_unstable_by(mid, |&a, &b| {
                        pts[a as usize][axis].total_cmp(&pts[b as usize][axis])
                    });
                    (axis, mid)
                } else {
                    // Order within halves is irrelevant, but the element at
                    // `mid` must carry a coordinate >= every left coord for
                    // split-plane pruning; establish that by selecting the
                    // minimum of the right half to the boundary.
                    idx[mid..].select_nth_unstable_by(0, |&a, &b| {
                        pts[a as usize][axis].total_cmp(&pts[b as usize][axis])
                    });
                    (axis, mid)
                }
            }
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.bbox_lo.len()
    }

    /// Bounding box of the whole tree (the root node's box).
    pub fn bbox(&self) -> Aabb<D> {
        Aabb {
            lo: self.bbox_lo[0],
            hi: self.bbox_hi[0],
        }
    }

    /// Number of points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Is `n` a leaf?
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.right[n as usize] == NO_NODE && self.count[n as usize] > 0 || self.n_nodes() == 1
    }

    /// Left child of interior node `n` (always `n + 1` by construction).
    pub fn left(&self, n: NodeId) -> NodeId {
        n + 1
    }

    /// The points of leaf `n`'s bucket.
    pub fn leaf_points(&self, n: NodeId) -> &[PointN<D>] {
        let f = self.first[n as usize] as usize;
        let c = self.count[n as usize] as usize;
        &self.points[f..f + c]
    }

    /// Maximum depth (root = 0), by traversal.
    pub fn depth(&self) -> usize {
        fn rec<const D: usize>(t: &KdTree<D>, n: NodeId, d: usize) -> usize {
            if t.is_leaf(n) {
                d
            } else {
                rec(t, t.left(n), d + 1).max(rec(t, t.right[n as usize], d + 1))
            }
        }
        rec(self, 0, 0)
    }

    /// Leaf that `p` would descend to following split planes (used for
    /// tree-order point sorting, paper §4.4).
    pub fn locate(&self, p: &PointN<D>) -> NodeId {
        let mut n = 0 as NodeId;
        while !self.is_leaf(n) {
            let axis = self.split_dim[n as usize] as usize;
            n = if p[axis] < self.split_val[n as usize] {
                self.left(n)
            } else {
                self.right[n as usize]
            };
        }
        n
    }

    /// Check structural invariants; returns a description of the first
    /// violation. Used by tests and property tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_nodes();
        if n == 0 {
            return Err("empty tree".into());
        }
        let mut seen_points = 0usize;
        let mut stack = vec![0 as NodeId];
        let mut visited = vec![false; n];
        while let Some(id) = stack.pop() {
            let i = id as usize;
            if i >= n {
                return Err(format!("node id {id} out of range"));
            }
            if visited[i] {
                return Err(format!("node {id} reachable twice"));
            }
            visited[i] = true;
            let bbox = Aabb {
                lo: self.bbox_lo[i],
                hi: self.bbox_hi[i],
            };
            if !bbox.is_valid() {
                return Err(format!("node {id} has an invalid bbox"));
            }
            if self.is_leaf(id) {
                let f = self.first[i] as usize;
                let c = self.count[i] as usize;
                if c == 0 && n > 1 {
                    return Err(format!("leaf {id} is empty"));
                }
                if c > self.leaf_size {
                    return Err(format!("leaf {id} exceeds leaf_size"));
                }
                if f + c > self.points.len() {
                    return Err(format!("leaf {id} bucket out of range"));
                }
                for p in &self.points[f..f + c] {
                    if !bbox.contains(p) {
                        return Err(format!("leaf {id} bbox does not contain its points"));
                    }
                }
                seen_points += c;
            } else {
                let (l, r) = (self.left(id), self.right[i]);
                if r == NO_NODE {
                    return Err(format!("interior {id} missing right child"));
                }
                let axis = self.split_dim[i] as usize;
                let sv = self.split_val[i];
                // Child bboxes inside parent, split separates them.
                for (side, c) in [("left", l), ("right", r)] {
                    let cb = Aabb {
                        lo: self.bbox_lo[c as usize],
                        hi: self.bbox_hi[c as usize],
                    };
                    if !(bbox.union(&cb) == bbox) {
                        return Err(format!("{side} child of {id} escapes parent bbox"));
                    }
                }
                if self.bbox_hi[l as usize][axis] > sv + 1e-6
                    && self.policy == SplitPolicy::MedianCycle
                {
                    return Err(format!("left subtree of {id} crosses split plane"));
                }
                if self.bbox_lo[r as usize][axis] < sv - 1e-6 {
                    return Err(format!("right subtree of {id} crosses split plane"));
                }
                stack.push(r);
                stack.push(l);
            }
        }
        if seen_points != self.points.len() {
            return Err(format!(
                "leaves cover {seen_points} points, expected {}",
                self.points.len()
            ));
        }
        if !visited.iter().all(|&v| v) {
            return Err("unreachable nodes exist".into());
        }
        crate::linearize::check_skip_links(&self.right, &self.skip)
    }
}

impl<const D: usize> Aabb<D> {
    /// Bounding box of the points selected by `idx`.
    fn of_points_idx(pts: &[PointN<D>], idx: &[u32]) -> Aabb<D> {
        idx.iter()
            .fold(Aabb::empty(), |b, &i| b.grow(pts[i as usize]))
    }
}

/// Stable-order-free in-place partition: elements satisfying `pred` move to
/// the front; returns the boundary index.
fn partition_in_place<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut i = 0;
    for j in 0..xs.len() {
        if pred(&xs[j]) {
            xs.swap(i, j);
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<PointN<D>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| PointN(std::array::from_fn(|_| rng.gen_range(-100.0..100.0))))
            .collect()
    }

    #[test]
    fn single_point_is_one_leaf() {
        let t = KdTree::build(&[PointN([1.0, 2.0])], 4, SplitPolicy::MedianCycle);
        assert_eq!(t.n_nodes(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.leaf_points(0).len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn median_tree_validates() {
        let pts = random_points::<3>(500, 1);
        let t = KdTree::build(&pts, 8, SplitPolicy::MedianCycle);
        t.validate().unwrap();
        assert!(t.n_nodes() > 64);
    }

    #[test]
    fn midpoint_tree_validates() {
        let pts = random_points::<3>(500, 2);
        let t = KdTree::build(&pts, 8, SplitPolicy::MidpointWidest);
        t.validate().unwrap();
    }

    #[test]
    fn duplicate_points_terminate() {
        // All identical: midpoint split would loop without the median
        // fallback; both policies must terminate and validate.
        let pts = vec![PointN([3.0, 3.0]); 100];
        for policy in [SplitPolicy::MedianCycle, SplitPolicy::MidpointWidest] {
            let t = KdTree::build(&pts, 4, policy);
            t.validate().unwrap();
            assert_eq!(t.n_points(), 100);
        }
    }

    #[test]
    fn left_child_is_next_node() {
        let pts = random_points::<2>(200, 3);
        let t = KdTree::build(&pts, 4, SplitPolicy::MedianCycle);
        for n in 0..t.n_nodes() as NodeId {
            if !t.is_leaf(n) {
                assert_eq!(t.left(n), n + 1);
                assert!(t.right[n as usize] > n + 1);
            }
        }
    }

    #[test]
    fn perm_is_permutation() {
        let pts = random_points::<2>(300, 4);
        let t = KdTree::build(&pts, 4, SplitPolicy::MedianCycle);
        let mut seen = vec![false; 300];
        for &p in &t.perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        for (i, &p) in t.perm.iter().enumerate() {
            assert_eq!(t.points[i], pts[p as usize]);
        }
    }

    #[test]
    fn locate_finds_containing_leaf() {
        let pts = random_points::<2>(400, 5);
        let t = KdTree::build(&pts, 8, SplitPolicy::MedianCycle);
        for p in &pts {
            let leaf = t.locate(p);
            assert!(t.is_leaf(leaf));
        }
    }

    #[test]
    fn depth_is_logarithmic_for_median() {
        let pts = random_points::<3>(1024, 6);
        let t = KdTree::build(&pts, 1, SplitPolicy::MedianCycle);
        // Perfectly balanced would be 10; allow slack for bucket rounding.
        assert!(t.depth() <= 12, "depth {} too large", t.depth());
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn empty_input_rejected() {
        let _ = KdTree::<2>::build(&[], 4, SplitPolicy::MedianCycle);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_input_rejected() {
        let _ = KdTree::build(&[PointN([f32::NAN, 0.0])], 4, SplitPolicy::MedianCycle);
    }

    proptest! {
        #[test]
        fn prop_tree_invariants_median(n in 1usize..300, leaf in 1usize..16, seed in 0u64..1000) {
            let pts = random_points::<3>(n, seed);
            let t = KdTree::build(&pts, leaf, SplitPolicy::MedianCycle);
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
        }

        #[test]
        fn prop_tree_invariants_midpoint(n in 1usize..300, leaf in 1usize..16, seed in 0u64..1000) {
            let pts = random_points::<3>(n, seed);
            let t = KdTree::build(&pts, leaf, SplitPolicy::MidpointWidest);
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
        }

        #[test]
        fn prop_clustered_duplicates(dups in 1usize..50, uniq in 0usize..50, seed in 0u64..100) {
            let mut pts = vec![PointN([1.0f32, 1.0]); dups];
            pts.extend(random_points::<2>(uniq, seed));
            for policy in [SplitPolicy::MedianCycle, SplitPolicy::MidpointWidest] {
                let t = KdTree::build(&pts, 4, policy);
                prop_assert!(t.validate().is_ok());
                prop_assert_eq!(t.n_points(), pts.len());
            }
        }
    }
}
