//! Bounding-volume hierarchy over triangles.
//!
//! The paper's introduction motivates tree traversals with graphics:
//! “various structures such as kd-trees and bounding volume hierarchies
//! are used to capture the locations of objects in a scene, and then rays
//! traverse the tree to determine which object(s) they intersect” — and
//! much of the related work on ropes targets exactly BVH/kd ray traversal
//! [5, 6, 21]. The BVH is not in the paper's benchmark set; it is included
//! here as the canonical *downstream* workload for the transformations.
//!
//! Median-split over centroids on the widest axis, buckets in the leaves,
//! left-biased preorder linearization like every other tree in this crate.

use crate::geom::{Aabb, PointN};
use crate::{NodeId, NO_NODE};

/// A triangle, by its three vertices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: PointN<3>,
    /// Second vertex.
    pub b: PointN<3>,
    /// Third vertex.
    pub c: PointN<3>,
}

impl Triangle {
    /// The triangle's bounding box.
    pub fn bbox(&self) -> Aabb<3> {
        Aabb::point(self.a).grow(self.b).grow(self.c)
    }

    /// Centroid.
    pub fn centroid(&self) -> PointN<3> {
        PointN(std::array::from_fn(|i| {
            (self.a[i] + self.b[i] + self.c[i]) / 3.0
        }))
    }
}

/// A linearized BVH, structure-of-arrays; interior node `n` has its left
/// child at `n + 1` and its right child at `right[n]`.
#[derive(Debug, Clone)]
pub struct Bvh {
    /// Per-node bounding-box minimum corner.
    pub bbox_lo: Vec<PointN<3>>,
    /// Per-node bounding-box maximum corner.
    pub bbox_hi: Vec<PointN<3>>,
    /// Right child, or [`NO_NODE`] for leaves.
    pub right: Vec<NodeId>,
    /// Apetrei-style escape link: the next preorder node outside `n`'s
    /// subtree, or [`NO_NODE`] past the last. Enables the ropes-free
    /// stackless walk (`next = descend ? n + 1 : skip[n]`).
    pub skip: Vec<NodeId>,
    /// First triangle of the leaf bucket.
    pub first: Vec<u32>,
    /// Bucket length; 0 for interior nodes.
    pub count: Vec<u32>,
    /// Triangles, reordered so leaf buckets are contiguous.
    pub triangles: Vec<Triangle>,
    /// `perm[i]` = original index of `triangles[i]`.
    pub perm: Vec<u32>,
    /// Maximum bucket size.
    pub leaf_size: usize,
}

impl Bvh {
    /// Build over `tris` with buckets of at most `leaf_size`.
    ///
    /// # Panics
    /// Panics on empty input, zero `leaf_size`, or non-finite vertices.
    pub fn build(tris: &[Triangle], leaf_size: usize) -> Self {
        assert!(!tris.is_empty(), "BVH over zero triangles");
        assert!(leaf_size > 0, "leaf_size must be positive");
        assert!(
            tris.iter()
                .all(|t| t.a.is_finite() && t.b.is_finite() && t.c.is_finite()),
            "BVH input contains non-finite vertices"
        );
        let n = tris.len();
        let centroids: Vec<PointN<3>> = tris.iter().map(Triangle::centroid).collect();
        let mut bvh = Bvh {
            bbox_lo: Vec::new(),
            bbox_hi: Vec::new(),
            right: Vec::new(),
            skip: Vec::new(),
            first: Vec::new(),
            count: Vec::new(),
            triangles: tris.to_vec(),
            perm: (0..n as u32).collect(),
            leaf_size,
        };
        let mut idx: Vec<u32> = (0..n as u32).collect();
        bvh.build_rec(tris, &centroids, &mut idx, 0);
        bvh.triangles = idx.iter().map(|&i| tris[i as usize]).collect();
        bvh.perm = idx;
        bvh.skip = crate::linearize::skip_links(&bvh.right);
        bvh
    }

    fn build_rec(
        &mut self,
        tris: &[Triangle],
        cents: &[PointN<3>],
        idx: &mut [u32],
        offset: u32,
    ) -> NodeId {
        let id = self.bbox_lo.len() as NodeId;
        let bbox = idx
            .iter()
            .fold(Aabb::empty(), |b, &i| b.union(&tris[i as usize].bbox()));
        self.bbox_lo.push(bbox.lo);
        self.bbox_hi.push(bbox.hi);
        self.right.push(NO_NODE);
        self.first.push(offset);
        self.count.push(0);

        if idx.len() <= self.leaf_size {
            self.count[id as usize] = idx.len() as u32;
            return id;
        }

        // Median split of centroids along the centroid-bbox's widest axis.
        let cb = idx
            .iter()
            .fold(Aabb::empty(), |b, &i| b.grow(cents[i as usize]));
        let axis = cb.widest_axis();
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            cents[a as usize][axis].total_cmp(&cents[b as usize][axis])
        });

        let (l, r) = idx.split_at_mut(mid);
        let left = self.build_rec(tris, cents, l, offset);
        debug_assert_eq!(left, id + 1, "left-biased preorder violated");
        let right = self.build_rec(tris, cents, r, offset + mid as u32);
        self.right[id as usize] = right;
        id
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.bbox_lo.len()
    }

    /// Is `n` a leaf?
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.right[n as usize] == NO_NODE
    }

    /// Left child of interior node `n`.
    pub fn left(&self, n: NodeId) -> NodeId {
        n + 1
    }

    /// Triangles in leaf `n`'s bucket, with their position in the
    /// reordered array (so hits can be reported by triangle id).
    pub fn leaf_triangles(&self, n: NodeId) -> (&[Triangle], u32) {
        let f = self.first[n as usize] as usize;
        let c = self.count[n as usize] as usize;
        (&self.triangles[f..f + c], f as u32)
    }

    /// Maximum depth (root = 0).
    pub fn depth(&self) -> usize {
        fn rec(t: &Bvh, n: NodeId, d: usize) -> usize {
            if t.is_leaf(n) {
                d
            } else {
                rec(t, t.left(n), d + 1).max(rec(t, t.right[n as usize], d + 1))
            }
        }
        rec(self, 0, 0)
    }

    /// Structural invariants, for tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut covered = 0usize;
        let mut stack = vec![0 as NodeId];
        while let Some(id) = stack.pop() {
            let i = id as usize;
            let bbox = Aabb {
                lo: self.bbox_lo[i],
                hi: self.bbox_hi[i],
            };
            if !bbox.is_valid() {
                return Err(format!("node {id} invalid bbox"));
            }
            if self.is_leaf(id) {
                let (tris, _) = self.leaf_triangles(id);
                if tris.is_empty() && self.n_nodes() > 1 {
                    return Err(format!("leaf {id} empty"));
                }
                for t in tris {
                    let tb = t.bbox();
                    if bbox.union(&tb) != bbox {
                        return Err(format!("leaf {id} bbox does not contain its triangles"));
                    }
                }
                covered += tris.len();
            } else {
                for c in [self.left(id), self.right[i]] {
                    let cb = Aabb {
                        lo: self.bbox_lo[c as usize],
                        hi: self.bbox_hi[c as usize],
                    };
                    if bbox.union(&cb) != bbox {
                        return Err(format!("child {c} of {id} escapes parent bbox"));
                    }
                    stack.push(c);
                }
            }
        }
        if covered != self.triangles.len() {
            return Err(format!(
                "leaves cover {covered} of {} triangles",
                self.triangles.len()
            ));
        }
        crate::linearize::check_skip_links(&self.right, &self.skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_tris(n: usize, seed: u64) -> Vec<Triangle> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = PointN(std::array::from_fn(|_| rng.gen_range(-10.0f32..10.0)));
                let e1 = PointN(std::array::from_fn(|_| rng.gen_range(-0.5f32..0.5)));
                let e2 = PointN(std::array::from_fn(|_| rng.gen_range(-0.5f32..0.5)));
                Triangle {
                    a: base,
                    b: base.add_scaled(&e1, 1.0),
                    c: base.add_scaled(&e2, 1.0),
                }
            })
            .collect()
    }

    #[test]
    fn bvh_validates() {
        let tris = random_tris(500, 91);
        let bvh = Bvh::build(&tris, 4);
        bvh.validate().unwrap();
        assert!(bvh.n_nodes() > 100);
    }

    #[test]
    fn single_triangle() {
        let tris = random_tris(1, 92);
        let bvh = Bvh::build(&tris, 4);
        assert_eq!(bvh.n_nodes(), 1);
        bvh.validate().unwrap();
    }

    #[test]
    fn degenerate_coincident_triangles() {
        let t = random_tris(1, 93)[0];
        let tris = vec![t; 60];
        let bvh = Bvh::build(&tris, 4);
        bvh.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "zero triangles")]
    fn empty_rejected() {
        let _ = Bvh::build(&[], 4);
    }

    proptest! {
        #[test]
        fn prop_bvh_invariants(n in 1usize..200, leaf in 1usize..12, seed in 0u64..200) {
            let tris = random_tris(n, seed);
            let bvh = Bvh::build(&tris, leaf);
            prop_assert!(bvh.validate().is_ok(), "{:?}", bvh.validate());
        }
    }
}
