//! # gpu-tree-traversals
//!
//! A Rust reproduction of **“General Transformations for GPU Execution of
//! Tree Traversals”** (Goldfarb, Jo & Kulkarni, SC 2013): the *autoropes*
//! and *lockstep traversal* transformations, static call-set analysis, and
//! the paper's five benchmarks, running on a deterministic SIMT GPU
//! simulator.
//!
//! This crate is an umbrella re-exporting the workspace:
//!
//! * [`sim`] — the SIMT GPU simulator (warps, masks, coalescing, SMs).
//! * [`trees`] — kd-trees, the Barnes-Hut oct-tree, vantage-point trees,
//!   left-biased linearization, hot/cold node layouts.
//! * [`points`] — benchmark inputs, point sorting, the sortedness profiler.
//! * [`runtime`] — the executors: CPU recursive (sequential/parallel),
//!   naïve GPU recursion, autoropes, lockstep.
//! * [`apps`] — Barnes-Hut, Point Correlation, kNN, NN, Vantage Point.
//! * [`ir`] — the traversal compiler: kernel IR, call-set analysis,
//!   pseudo-tail-recursion checking, the transformations, an interpreter.
//! * [`harness`] — regenerates the paper's Table 1, Table 2, Figures 10/11.
//! * [`service`] — a batched concurrent query service that applies the
//!   paper's sort + profile + executor-choice pipeline per batch, online.
//! * [`net`] — the TCP front-end over [`service`]: length-prefixed binary
//!   frames, batch submission, waker-multiplexed completions.
//!
//! ## Quickstart
//!
//! Count neighbors within a radius (Point Correlation) with the lockstep
//! GPU traversal and check it against the CPU baseline:
//!
//! ```
//! use gpu_tree_traversals::prelude::*;
//!
//! // A small clustered dataset and its kd-tree.
//! let data = gts_points::gen::covtype_like(512, 42);
//! let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
//! let kernel = gts_apps::pc::PcKernel::new(&tree, 0.5);
//!
//! // CPU reference (the paper's Figure 1, run literally).
//! let mut cpu_pts: Vec<_> = data.iter().map(|&p| gts_apps::pc::PcPoint::new(p)).collect();
//! gts_runtime::cpu::run_sequential(&kernel, &mut cpu_pts);
//!
//! // Lockstep GPU traversal on the simulated Tesla C2070.
//! let mut gpu_pts: Vec<_> = data.iter().map(|&p| gts_apps::pc::PcPoint::new(p)).collect();
//! let report = gts_runtime::gpu::lockstep::run(&kernel, &mut gpu_pts, &GpuConfig::default());
//!
//! // Same counts, and the simulator tells you what the traversal cost.
//! for (c, g) in cpu_pts.iter().zip(&gpu_pts) {
//!     assert_eq!(c.count, g.count);
//! }
//! assert!(report.launch.counters.global_transactions > 0);
//! println!("modeled time: {:.3} ms", report.ms());
//! ```

#![warn(missing_docs)]

pub use gts_apps as apps;
pub use gts_harness as harness;
pub use gts_ir as ir;
pub use gts_net as net;
pub use gts_points as points;
pub use gts_runtime as runtime;
pub use gts_service as service;
pub use gts_sim as sim;
pub use gts_trees as trees;

/// Convenient re-exports of the types most programs need.
pub mod prelude {
    pub use gts_apps;
    pub use gts_points;
    pub use gts_runtime::gpu::GpuConfig;
    pub use gts_runtime::{self, StackLayout, TraversalKernel};
    pub use gts_service::{Query, QueryKind, QueryResult, Service, ServiceConfig};
    pub use gts_sim::{CostModel, DeviceConfig, WarpMask};
    pub use gts_trees::{Aabb, KdTree, Octree, PointN, SplitPolicy, VpTree};
}
