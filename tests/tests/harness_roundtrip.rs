//! Harness output contracts: JSON serialization of cell results round-trips
//! and the table renderers stay consistent with the underlying cells.

use gts_harness::config::HarnessConfig;
use gts_harness::row::CellResult;
use gts_harness::suite::run_suite;
use gts_harness::{figures, table1, table2};

fn tiny_suite() -> gts_harness::suite::SuiteResult {
    let mut cfg = HarnessConfig::at_scale(0.002);
    cfg.threads = vec![1, 8, 32];
    run_suite(&cfg, Some("Point Correlation"))
}

#[test]
fn cells_roundtrip_through_json() {
    let suite = tiny_suite();
    let json = serde_json::to_string(&suite.cells).expect("serialize");
    let back: Vec<CellResult> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), suite.cells.len());
    // serde_json's float printing is not guaranteed ULP-exact; compare
    // within a relative epsilon.
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(1.0);
    for (a, b) in suite.cells.iter().zip(&back) {
        assert!(close(
            a.non_lockstep.traversal_ms,
            b.non_lockstep.traversal_ms
        ));
        assert_eq!(a.non_lockstep.benchmark, b.non_lockstep.benchmark);
        for ((ta, ma), (tb, mb)) in a.cpu_sweep.iter().zip(&b.cpu_sweep) {
            assert_eq!(ta, tb);
            assert!(close(*ma, *mb), "{ma} vs {mb}");
        }
        if let (Some(la), Some(lb)) = (&a.lockstep, &b.lockstep) {
            assert!(close(la.avg_nodes, lb.avg_nodes));
        }
        assert_eq!(a.profiler_picks_lockstep, b.profiler_picks_lockstep);
    }
}

#[test]
fn renderers_agree_with_cells() {
    let suite = tiny_suite();
    let t1 = table1::render(&suite);
    let t2 = table2::render(&suite);
    // Every input appears in both tables.
    for input in ["Covtype", "Mnist", "Random", "Geocity"] {
        assert!(t1.contains(input), "table1 missing {input}");
        assert!(t2.contains(input), "table2 missing {input}");
    }
    // Figure panels exist for both sortedness values and all three
    // variants (PC is skip-eligible, so it carries a Stackless panel).
    assert_eq!(figures::panels(&suite, true).len(), 3);
    assert_eq!(figures::panels(&suite, false).len(), 3);
    // The rendered traversal time of the first L row matches the cell.
    let first_l = suite.cells[0].lockstep.as_ref().expect("PC has L rows");
    assert!(
        t1.contains(&format!("{:.2}", first_l.traversal_ms)),
        "table1 does not show the cell's modeled time"
    );
}

#[test]
fn sorted_and_unsorted_cells_alternate() {
    let suite = tiny_suite();
    for pair in suite.cells.chunks(2) {
        assert!(pair[0].non_lockstep.sorted);
        assert!(!pair[1].non_lockstep.sorted);
        assert_eq!(pair[0].non_lockstep.input, pair[1].non_lockstep.input);
    }
}
