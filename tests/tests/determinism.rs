//! Determinism: everything except wall-clock CPU timings is exactly
//! reproducible — same inputs, same seeds, same counters, same modeled
//! cycles, regardless of how many host threads simulate the warps.

use gts_apps::pc::{PcKernel, PcPoint};
use gts_apps::vp::{VpKernel, VpPoint};
use gts_points::gen;
use gts_runtime::gpu::{autoropes, lockstep, GpuConfig};
use gts_trees::{KdTree, SplitPolicy, VpTree};

#[test]
fn gpu_reports_identical_across_host_thread_counts() {
    let data = gen::covtype_like(3_000, 61);
    let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
    let kernel = PcKernel::new(&tree, 2.0);

    let mut results = Vec::new();
    for host_threads in [1, 2, 7] {
        let cfg = GpuConfig::default().with_host_threads(host_threads);
        let mut pts: Vec<PcPoint<7>> = data.iter().map(|&p| PcPoint::new(p)).collect();
        let r = autoropes::run(&kernel, &mut pts, &cfg);
        results.push((
            r.launch.cycles,
            r.launch.counters.global_transactions,
            r.launch.counters.warp_steps,
            r.stats.per_point_nodes.clone(),
            pts.iter().map(|p| p.count).collect::<Vec<_>>(),
        ));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
fn repeated_runs_are_bit_identical() {
    let data = gen::geocity_like(2_000, 62);
    let tree = VpTree::build(&data, 8);
    let kernel = VpKernel::new(&tree);
    let cfg = GpuConfig::default();
    let run = || {
        let mut pts: Vec<VpPoint<2>> = data.iter().map(|&p| VpPoint::new(p)).collect();
        let r = lockstep::run(&kernel, &mut pts, &cfg);
        (
            r.launch.cycles,
            r.per_warp_nodes.clone(),
            pts.iter().map(|p| p.best_d.to_bits()).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn generators_reproducible_across_calls() {
    assert_eq!(gen::covtype_like(500, 7), gen::covtype_like(500, 7));
    assert_eq!(gen::plummer(500, 7), gen::plummer(500, 7));
    // Different seeds must differ (catching seed plumbing mistakes).
    assert_ne!(gen::covtype_like(500, 7), gen::covtype_like(500, 8));
}
