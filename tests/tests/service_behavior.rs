//! Behavioral tests for `gts-service`: batcher edge cases, shutdown
//! semantics, validation, backpressure, and the thread-safety contract.

use gts_apps::oracle;
use gts_points::gen::uniform;
use gts_service::{
    Backend, ExecPolicy, KdIndex, Metrics, Query, QueryKind, QueryResult, Service, ServiceConfig,
    ServiceError, Ticket, TreeIndex,
};
use gts_trees::SplitPolicy;
use std::sync::Arc;
use std::time::Duration;

fn small_service(cfg: ServiceConfig) -> (Service, Vec<gts_trees::PointN<3>>) {
    let pts = uniform::<3>(256, 77);
    let service = Service::start(cfg);
    let id = service.register_index(
        Arc::new(KdIndex::build("t", &pts, 8, SplitPolicy::MedianCycle)) as Arc<dyn TreeIndex>,
    );
    assert_eq!(id, 0);
    (service, pts)
}

fn nn_query(pos: [f32; 3]) -> Query {
    Query {
        index: 0,
        pos: pos.to_vec(),
        kind: QueryKind::Nn,
    }
}

#[test]
fn batch_smaller_than_one_warp_still_answers() {
    // Three queries, nowhere near the 32-lane warp or the size target:
    // only the deadline (or shutdown drain) can flush them.
    let (service, pts) = small_service(ServiceConfig {
        batch_queries: 256,
        max_wait: Duration::from_millis(5),
        ..ServiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..3)
        .map(|i| service.submit(nn_query(pts[i].0)).unwrap())
        .collect();
    // Resolved by the deadline flush — no shutdown needed.
    for (i, t) in tickets.iter().enumerate() {
        let QueryResult::Nn { dist2, .. } = t.wait().unwrap() else {
            panic!()
        };
        let want = oracle::nn_dist2_nonself(&pts, &pts[i]);
        assert!((dist2 - want).abs() <= 1e-5 * want.max(1e-6));
    }
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 3);
    assert!(snapshot.max_batch_size <= 3);
}

#[test]
fn idle_deadlines_flush_nothing_and_shutdown_is_clean() {
    let (service, _) = small_service(ServiceConfig {
        max_wait: Duration::from_millis(1),
        ..ServiceConfig::default()
    });
    // Let several empty deadline cycles pass.
    std::thread::sleep(Duration::from_millis(20));
    let snapshot = service.shutdown();
    assert_eq!(snapshot.batches, 0);
    assert_eq!(snapshot.submitted, 0);
}

#[test]
fn k_exceeding_index_size_truncates_like_the_oracle() {
    let (service, pts) = small_service(ServiceConfig {
        max_wait: Duration::from_millis(2),
        ..ServiceConfig::default()
    });
    let q = Query {
        index: 0,
        pos: pts[0].0.to_vec(),
        kind: QueryKind::Knn { k: 10 * pts.len() },
    };
    let QueryResult::Knn { dist2, ids } = service.query(q).unwrap() else {
        panic!()
    };
    assert_eq!(dist2.len(), pts.len(), "every point is a neighbor");
    assert_eq!(ids.len(), pts.len());
    let want = oracle::knn_dists(&pts, &pts[0], 10 * pts.len());
    for (got, want) in dist2.iter().zip(&want) {
        assert!((got - want).abs() <= 1e-5 * want.max(1e-6));
    }
    service.shutdown();
}

#[test]
fn shutdown_with_in_flight_queries_delivers_all_results() {
    // Size target never reached, deadline far away: everything is still
    // in the batcher's buckets when shutdown starts. The drain must
    // deliver every result — and shutdown must not deadlock.
    let (service, pts) = small_service(ServiceConfig {
        batch_queries: 4096,
        max_wait: Duration::from_secs(3600),
        workers: 2,
        ..ServiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..200)
        .map(|i| service.submit(nn_query(pts[i % pts.len()].0)).unwrap())
        .collect();
    assert!(
        tickets.iter().all(|t| t.try_get().is_none()),
        "nothing should have flushed yet"
    );
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 200, "drain resolved every query");
    for t in &tickets {
        assert!(matches!(t.try_get(), Some(Ok(_))));
    }
}

#[test]
fn concurrent_submitters_under_tight_backpressure() {
    // A 2-slot submission queue forces submitters to block on send; the
    // pipeline must keep moving and deliver everything.
    let (service, pts) = small_service(ServiceConfig {
        queue_capacity: 2,
        dispatch_capacity: 1,
        batch_queries: 32,
        max_wait: Duration::from_millis(1),
        workers: 2,
        ..ServiceConfig::default()
    });
    std::thread::scope(|scope| {
        for c in 0..4 {
            let service = &service;
            let pts = &pts;
            scope.spawn(move || {
                for i in 0..50 {
                    let p = pts[(c * 37 + i * 11) % pts.len()];
                    let QueryResult::Nn { dist2, .. } = service.query(nn_query(p.0)).unwrap()
                    else {
                        panic!()
                    };
                    assert!(dist2.is_finite());
                }
            });
        }
    });
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 200);
}

#[test]
fn submissions_after_shutdown_are_rejected_not_hung() {
    let (service, pts) = small_service(ServiceConfig::default());
    let t = service.submit(nn_query(pts[0].0)).unwrap();
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 1);
    assert!(t.try_get().is_some());
    // The service is consumed by shutdown; a new handle can't exist. The
    // rejection path is covered through validation errors below.
}

#[test]
fn validation_rejects_bad_queries_with_specific_errors() {
    let (service, pts) = small_service(ServiceConfig::default());
    let err = service
        .submit(Query {
            index: 9,
            pos: vec![0.0; 3],
            kind: QueryKind::Nn,
        })
        .unwrap_err();
    assert_eq!(err, ServiceError::UnknownIndex(9));

    let err = service
        .submit(Query {
            index: 0,
            pos: vec![0.0; 2],
            kind: QueryKind::Nn,
        })
        .unwrap_err();
    assert_eq!(
        err,
        ServiceError::DimMismatch {
            expected: 3,
            got: 2
        }
    );

    let err = service
        .submit(Query {
            index: 0,
            pos: vec![0.0; 3],
            kind: QueryKind::Knn { k: 0 },
        })
        .unwrap_err();
    assert!(matches!(err, ServiceError::BadQuery(_)));

    let err = service
        .submit(Query {
            index: 0,
            pos: vec![f32::NAN, 0.0, 0.0],
            kind: QueryKind::Nn,
        })
        .unwrap_err();
    assert!(matches!(err, ServiceError::BadQuery(_)));

    let err = service
        .submit(Query {
            index: 0,
            pos: vec![0.0; 3],
            kind: QueryKind::Pc {
                radius: f32::INFINITY,
            },
        })
        .unwrap_err();
    assert!(matches!(err, ServiceError::BadQuery(_)));

    // Valid work still flows after rejections.
    let ok = service.query(nn_query(pts[1].0)).unwrap();
    assert!(matches!(ok, QueryResult::Nn { .. }));
    let snapshot = service.shutdown();
    assert_eq!(snapshot.rejected, 5);
    assert_eq!(snapshot.completed, 1);
}

#[test]
fn forced_cpu_backend_serves_queries_too() {
    let pts = uniform::<3>(128, 99);
    let service = Service::start(ServiceConfig {
        policy: ExecPolicy::forced(Backend::Cpu),
        max_wait: Duration::from_millis(1),
        ..ServiceConfig::default()
    });
    service.register_index(
        Arc::new(KdIndex::build("t", &pts, 8, SplitPolicy::MedianCycle)) as Arc<dyn TreeIndex>,
    );
    let QueryResult::Pc { count } = service
        .query(Query {
            index: 0,
            pos: pts[3].0.to_vec(),
            kind: QueryKind::Pc { radius: 0.3 },
        })
        .unwrap()
    else {
        panic!()
    };
    assert_eq!(count, oracle::pc_count(&pts, &pts[3], 0.3));
    let snapshot = service.shutdown();
    assert_eq!(snapshot.cpu_batches, snapshot.batches);
    assert_eq!(
        snapshot.model_ms, 0.0,
        "CPU backend has no modeled GPU time"
    );
}

#[test]
fn admission_rejects_with_predicted_wait_instead_of_stalling() {
    // Deadline far away so parked queries can only flush by size (or the
    // shutdown drain); budget of 1ns so any nonzero modeled wait rejects.
    let budget = Duration::from_nanos(1);
    let (service, pts) = small_service(ServiceConfig {
        batch_queries: 64,
        max_wait: Duration::from_secs(3600),
        admission_budget: Some(budget),
        ..ServiceConfig::default()
    });

    // Phase 1 — seed the EWMA model: exactly one size-triggered flush.
    // With no completed batches yet, the model predicts zero wait and
    // everything is admitted.
    let tickets: Vec<Ticket> = (0..64)
        .map(|i| service.submit(nn_query(pts[i % pts.len()].0)).unwrap())
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }

    // Phase 2 — queue one query (parks in the batcher, depth = 1), then
    // every further submission sees a modeled wait above the 1ns budget.
    let parked = service.submit(nn_query(pts[0].0)).unwrap();
    let err = service.submit(nn_query(pts[1].0)).unwrap_err();
    let ServiceError::Overloaded {
        predicted_wait,
        budget: got_budget,
    } = err
    else {
        panic!("expected Overloaded, got {err:?}");
    };
    assert!(
        predicted_wait > Duration::ZERO,
        "rejection carries the model"
    );
    assert_eq!(got_budget, budget);

    // Rejected callers return immediately; admitted work still completes
    // (the shutdown drain flushes the parked query) — never a stall.
    let snapshot = service.shutdown();
    assert!(matches!(parked.try_get(), Some(Ok(_))));
    assert_eq!(snapshot.completed, 65);
    assert_eq!(snapshot.admission_rejected, 1);
    assert_eq!(snapshot.rejected, 1);
}

/// The worker pool's thread-safety contract, enforced at compile time:
/// everything shared across service threads is `Send + Sync`, and the
/// traversal kernels themselves can be shared by the simulation's host
/// threads.
#[test]
fn service_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Service>();
    assert_send_sync::<Ticket>();
    assert_send_sync::<Query>();
    assert_send_sync::<QueryResult>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<KdIndex<3>>();
    assert_send_sync::<Arc<dyn TreeIndex>>();
    assert_send_sync::<gts_apps::nn::NnKernel<'_, 3>>();
    assert_send_sync::<gts_apps::knn::KnnKernel<'_, 3>>();
    assert_send_sync::<gts_apps::pc::PcKernel<'_, 3>>();
}
