//! End-to-end observability invariants: the trace ring and histogram
//! metrics stay bounded under sustained load, and the exports the harness
//! writes (`--trace-file`/`--metrics-file`) describe the same run the
//! metrics snapshot does.

use gts_points::gen::uniform;
use gts_service::{
    EventKind, KdIndex, Metrics, Query, QueryKind, Service, ServiceConfig, TreeIndex,
};
use gts_trees::SplitPolicy;
use std::sync::Arc;
use std::time::Duration;

fn small_service(trace_capacity: usize) -> (Service, usize) {
    let service = Service::start(ServiceConfig {
        batch_queries: 32,
        max_wait: Duration::from_millis(1),
        workers: 2,
        trace_capacity,
        ..ServiceConfig::default()
    });
    let pts = uniform::<3>(256, 11);
    let id = service.register_index(
        Arc::new(KdIndex::build("t", &pts, 8, SplitPolicy::MedianCycle)) as Arc<dyn TreeIndex>,
    );
    (service, id)
}

fn drive(service: &Service, index: usize, n: usize) {
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            let f = (i % 97) as f32 / 97.0;
            service
                .submit(Query {
                    index,
                    pos: vec![f, 1.0 - f, 0.5],
                    kind: QueryKind::Nn,
                })
                .expect("valid query")
        })
        .collect();
    for t in tickets {
        t.wait().expect("query succeeds");
    }
}

#[test]
fn sustained_load_keeps_trace_and_metrics_bounded() {
    // Far more lifecycle events than the ring holds: memory must stay at
    // the configured capacity, with wraparound keeping the newest events
    // in order.
    let cap = 128;
    let (service, id) = small_service(cap);
    drive(&service, id, 600);
    let (snapshot, trace) = service.shutdown_with_trace();
    assert_eq!(snapshot.completed, 600);
    assert_eq!(trace.events.len(), cap, "ring grew past capacity");
    assert!(trace.dropped > 0, "expected wraparound under this load");
    for pair in trace.events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "ring reordered events");
    }
    // Histogram snapshots are bounded by the fixed bucket count no matter
    // the sample count.
    for hist in [
        &snapshot.latency_hist,
        &snapshot.queue_wait_hist,
        &snapshot.model_ms_hist,
        &snapshot.node_visits_hist,
    ] {
        assert!(hist.buckets.len() <= gts_service::hist::N_BUCKETS);
    }
    // And the registry itself reports a load-independent footprint: the
    // first completion for an index allocates its per-index series, after
    // which the footprint is flat no matter the sample count.
    let m = Metrics::default();
    m.on_complete("t", Duration::from_micros(123), 1, 0);
    let before = m.approx_bytes();
    for _ in 0..5_000 {
        m.on_complete("t", Duration::from_micros(123), 1, 0);
    }
    assert_eq!(m.approx_bytes(), before);
}

#[test]
fn trace_spans_match_metrics_and_chrome_json_round_trips() {
    // Capacity covers the whole run: every dispatched batch must appear
    // as exactly one batch span, every query as one completion span.
    let (service, id) = small_service(16_384);
    drive(&service, id, 300);
    let (snapshot, trace) = service.shutdown_with_trace();
    assert_eq!(trace.dropped, 0);
    assert_eq!(trace.batch_spans() as u64, snapshot.batches);
    assert_eq!(trace.complete_spans() as u64, snapshot.completed);
    let submits = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Submit))
        .count();
    assert_eq!(submits as u64, snapshot.submitted);

    // The Chrome export round-trips through serde_json and every span is
    // temporally sane.
    let json = trace.to_chrome_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let serde_json::Value::Array(events) = parsed else {
        panic!("trace is not a JSON array")
    };
    assert_eq!(events.len(), trace.events.len());
    for ev in &events {
        let serde_json::Value::Object(fields) = ev else {
            panic!("event is not an object")
        };
        let num = |k: &str| -> Option<f64> {
            fields
                .iter()
                .find(|(name, _)| name == k)
                .and_then(|(_, v)| {
                    if let serde_json::Value::Number(n) = v {
                        Some(n.as_f64())
                    } else {
                        None
                    }
                })
        };
        let ts = num("ts").expect("every event has ts");
        assert!(ts >= 0.0, "negative ts");
        if let Some(dur) = num("dur") {
            assert!(dur >= 0.0, "negative dur");
        }
    }
}

#[test]
fn per_query_lifecycle_stays_ordered_in_service_trace() {
    let (service, id) = small_service(16_384);
    drive(&service, id, 128);
    let (_, trace) = service.shutdown_with_trace();
    // For every query id: submit, then enqueue, then complete — in seq
    // order, exactly once each (no rejects in this run).
    let rank = |k: &EventKind| match k {
        EventKind::Submit => Some(0),
        EventKind::Enqueue => Some(1),
        EventKind::Complete => Some(2),
        _ => None,
    };
    let mut per_query: std::collections::BTreeMap<u64, Vec<i32>> = Default::default();
    for e in &trace.events {
        if let Some(r) = rank(&e.kind) {
            per_query.entry(e.query).or_default().push(r);
        }
    }
    assert_eq!(per_query.len(), 128);
    for (q, ranks) in per_query {
        assert_eq!(ranks, vec![0, 1, 2], "query {q} lifecycle broken");
    }
}

#[test]
fn events_since_cursor_survives_ring_wraparound() {
    use gts_service::TraceRecorder;
    let rec = TraceRecorder::new(8);
    for i in 0..4 {
        rec.instant(i, i, 0, EventKind::Submit);
    }
    let (evs, missed) = rec.events_since(0);
    assert_eq!(missed, 0);
    assert_eq!(evs.len(), 4);
    let mut cursor = evs.last().unwrap().seq + 1;

    // Push far past capacity: the incremental feed resumes at the oldest
    // retained event and reports exactly how many it lost in between.
    for i in 0..20 {
        rec.instant(100 + i, i, 0, EventKind::Enqueue);
    }
    let (evs, missed) = rec.events_since(cursor);
    assert_eq!(evs.len(), 8, "only the ring's capacity is retained");
    for pair in evs.windows(2) {
        assert_eq!(pair[0].seq + 1, pair[1].seq, "feed has a gap or repeat");
    }
    assert_eq!(missed, evs[0].seq - cursor);
    assert_eq!(
        evs.len() as u64 + missed,
        20,
        "seen + missed accounts for every event since the cursor"
    );
    let by_kind: u64 = rec.dropped_by_kind().iter().map(|(_, c)| c).sum();
    assert_eq!(by_kind, rec.dropped(), "per-kind drops sum to the total");

    // A drained ring yields nothing and misses nothing.
    cursor = evs.last().unwrap().seq + 1;
    let (evs, missed) = rec.events_since(cursor);
    assert!(evs.is_empty());
    assert_eq!(missed, 0);
}

#[test]
fn flow_ids_pair_client_and_server_recorders() {
    use gts_service::{merge_snapshots, TraceContext, TraceRecorder};
    // Two independent processes' recorders, linked only by the context
    // the wire carried: the request flow (span_id*2) travels client →
    // server, the response flow (span_id*2+1) travels back.
    let client = TraceRecorder::new(64);
    let server = TraceRecorder::new(64);
    let ctx = TraceContext {
        trace_id: 0xBEEF,
        span_id: 7,
    };
    assert_ne!(ctx.request_flow(), ctx.response_flow());
    let flow_out = |flow, is_client| EventKind::FlowOut {
        flow,
        conn: 3,
        client: is_client,
    };
    let flow_in = |flow, is_client| EventKind::FlowIn {
        flow,
        conn: 3,
        client: is_client,
    };
    client.instant_traced(10, 1, 0, ctx.trace_id, flow_out(ctx.request_flow(), true));
    server.instant_traced(
        1000,
        42,
        0,
        ctx.trace_id,
        flow_in(ctx.request_flow(), false),
    );
    server.instant_traced(
        1500,
        42,
        0,
        ctx.trace_id,
        flow_out(ctx.response_flow(), false),
    );
    client.instant_traced(900, 1, 0, ctx.trace_id, flow_in(ctx.response_flow(), true));

    // Merge the client's timeline onto the server's (client wall clock
    // runs 990 µs behind here) — timestamps come out globally ordered.
    let merged = merge_snapshots(server.snapshot(), client.snapshot(), 990);
    assert_eq!(merged.events.len(), 4);
    for pair in merged.events.windows(2) {
        assert!(pair[0].ts_us <= pair[1].ts_us, "merge left ts unsorted");
    }

    // Every outbound flow half must find its inbound partner on the
    // opposite side with the same flow id.
    let mut outs = Vec::new();
    let mut ins = Vec::new();
    for e in &merged.events {
        match e.kind {
            EventKind::FlowOut { flow, client, .. } => outs.push((flow, client)),
            EventKind::FlowIn { flow, client, .. } => ins.push((flow, client)),
            _ => {}
        }
    }
    assert_eq!(outs.len(), 2);
    for (flow, from_client) in outs {
        assert!(
            ins.contains(&(flow, !from_client)),
            "flow {flow} has no partner on the other side"
        );
    }

    // The Chrome export carries both flow ids as s/f pairs Perfetto can
    // join, with the enclosing-slice binding point on the finish half.
    let json = merged.to_chrome_json();
    assert!(json.contains(&format!("\"id\":{}", ctx.request_flow())));
    assert!(json.contains(&format!("\"id\":{}", ctx.response_flow())));
    assert!(json.contains("\"ph\":\"s\""));
    assert!(json.contains("\"ph\":\"f\""));
    assert!(json.contains("\"bp\":\"e\""));
    serde_json::from_str::<serde_json::Value>(&json).expect("merged trace JSON parses");
}

#[test]
fn rejected_queries_leave_reject_events() {
    let (service, _) = small_service(1024);
    let err = service
        .submit(Query {
            index: 99,
            pos: vec![0.0, 0.0, 0.0],
            kind: QueryKind::Nn,
        })
        .expect_err("unknown index");
    assert!(matches!(err, gts_service::ServiceError::UnknownIndex(99)));
    let trace = service.trace();
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Reject { reason } if reason == "unknown-index")));
    let snapshot = service.shutdown();
    assert_eq!(snapshot.rejected, 1);
}
