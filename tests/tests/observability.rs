//! End-to-end observability invariants: the trace ring and histogram
//! metrics stay bounded under sustained load, and the exports the harness
//! writes (`--trace-file`/`--metrics-file`) describe the same run the
//! metrics snapshot does.

use gts_points::gen::uniform;
use gts_service::{
    EventKind, KdIndex, Metrics, Query, QueryKind, Service, ServiceConfig, TreeIndex,
};
use gts_trees::SplitPolicy;
use std::sync::Arc;
use std::time::Duration;

fn small_service(trace_capacity: usize) -> (Service, usize) {
    let service = Service::start(ServiceConfig {
        batch_queries: 32,
        max_wait: Duration::from_millis(1),
        workers: 2,
        trace_capacity,
        ..ServiceConfig::default()
    });
    let pts = uniform::<3>(256, 11);
    let id = service.register_index(
        Arc::new(KdIndex::build("t", &pts, 8, SplitPolicy::MedianCycle)) as Arc<dyn TreeIndex>,
    );
    (service, id)
}

fn drive(service: &Service, index: usize, n: usize) {
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            let f = (i % 97) as f32 / 97.0;
            service
                .submit(Query {
                    index,
                    pos: vec![f, 1.0 - f, 0.5],
                    kind: QueryKind::Nn,
                })
                .expect("valid query")
        })
        .collect();
    for t in tickets {
        t.wait().expect("query succeeds");
    }
}

#[test]
fn sustained_load_keeps_trace_and_metrics_bounded() {
    // Far more lifecycle events than the ring holds: memory must stay at
    // the configured capacity, with wraparound keeping the newest events
    // in order.
    let cap = 128;
    let (service, id) = small_service(cap);
    drive(&service, id, 600);
    let (snapshot, trace) = service.shutdown_with_trace();
    assert_eq!(snapshot.completed, 600);
    assert_eq!(trace.events.len(), cap, "ring grew past capacity");
    assert!(trace.dropped > 0, "expected wraparound under this load");
    for pair in trace.events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "ring reordered events");
    }
    // Histogram snapshots are bounded by the fixed bucket count no matter
    // the sample count.
    for hist in [
        &snapshot.latency_hist,
        &snapshot.queue_wait_hist,
        &snapshot.model_ms_hist,
        &snapshot.node_visits_hist,
    ] {
        assert!(hist.buckets.len() <= gts_service::hist::N_BUCKETS);
    }
    // And the registry itself reports a load-independent footprint: the
    // first completion for an index allocates its per-index series, after
    // which the footprint is flat no matter the sample count.
    let m = Metrics::default();
    m.on_complete("t", Duration::from_micros(123));
    let before = m.approx_bytes();
    for _ in 0..5_000 {
        m.on_complete("t", Duration::from_micros(123));
    }
    assert_eq!(m.approx_bytes(), before);
}

#[test]
fn trace_spans_match_metrics_and_chrome_json_round_trips() {
    // Capacity covers the whole run: every dispatched batch must appear
    // as exactly one batch span, every query as one completion span.
    let (service, id) = small_service(16_384);
    drive(&service, id, 300);
    let (snapshot, trace) = service.shutdown_with_trace();
    assert_eq!(trace.dropped, 0);
    assert_eq!(trace.batch_spans() as u64, snapshot.batches);
    assert_eq!(trace.complete_spans() as u64, snapshot.completed);
    let submits = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Submit))
        .count();
    assert_eq!(submits as u64, snapshot.submitted);

    // The Chrome export round-trips through serde_json and every span is
    // temporally sane.
    let json = trace.to_chrome_json();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let serde_json::Value::Array(events) = parsed else {
        panic!("trace is not a JSON array")
    };
    assert_eq!(events.len(), trace.events.len());
    for ev in &events {
        let serde_json::Value::Object(fields) = ev else {
            panic!("event is not an object")
        };
        let num = |k: &str| -> Option<f64> {
            fields
                .iter()
                .find(|(name, _)| name == k)
                .and_then(|(_, v)| {
                    if let serde_json::Value::Number(n) = v {
                        Some(n.as_f64())
                    } else {
                        None
                    }
                })
        };
        let ts = num("ts").expect("every event has ts");
        assert!(ts >= 0.0, "negative ts");
        if let Some(dur) = num("dur") {
            assert!(dur >= 0.0, "negative dur");
        }
    }
}

#[test]
fn per_query_lifecycle_stays_ordered_in_service_trace() {
    let (service, id) = small_service(16_384);
    drive(&service, id, 128);
    let (_, trace) = service.shutdown_with_trace();
    // For every query id: submit, then enqueue, then complete — in seq
    // order, exactly once each (no rejects in this run).
    let rank = |k: &EventKind| match k {
        EventKind::Submit => Some(0),
        EventKind::Enqueue => Some(1),
        EventKind::Complete => Some(2),
        _ => None,
    };
    let mut per_query: std::collections::BTreeMap<u64, Vec<i32>> = Default::default();
    for e in &trace.events {
        if let Some(r) = rank(&e.kind) {
            per_query.entry(e.query).or_default().push(r);
        }
    }
    assert_eq!(per_query.len(), 128);
    for (q, ranks) in per_query {
        assert_eq!(ranks, vec![0, 1, 2], "query {q} lifecycle broken");
    }
}

#[test]
fn rejected_queries_leave_reject_events() {
    let (service, _) = small_service(1024);
    let err = service
        .submit(Query {
            index: 99,
            pos: vec![0.0, 0.0, 0.0],
            kind: QueryKind::Nn,
        })
        .expect_err("unknown index");
    assert!(matches!(err, gts_service::ServiceError::UnknownIndex(99)));
    let trace = service.trace();
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Reject { reason } if reason == "unknown-index")));
    let snapshot = service.shutdown();
    assert_eq!(snapshot.rejected, 1);
}
