//! Behavior of the optional L2 cache model across executors.

use gts_apps::pc::{PcKernel, PcPoint};
use gts_points::gen;
use gts_points::sort::{apply_perm, morton_order};
use gts_runtime::gpu::{autoropes, lockstep, GpuConfig};
use gts_trees::{Aabb, KdTree, PointN, SplitPolicy};

fn setup() -> (Vec<PointN<7>>, KdTree<7>, f32) {
    let data = gen::covtype_like(4_000, 77);
    let sorted = apply_perm(&data, &morton_order(&data));
    let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
    let bbox = Aabb::of_points(&data);
    let radius = 0.04 * bbox.lo.dist(&bbox.hi);
    (sorted, tree, radius)
}

#[test]
fn l2_never_changes_results_only_costs() {
    let (queries, tree, radius) = setup();
    let kernel = PcKernel::new(&tree, radius);
    let mut a: Vec<PcPoint<7>> = queries.iter().map(|&p| PcPoint::new(p)).collect();
    let mut b = a.clone();
    let dram = autoropes::run(&kernel, &mut a, &GpuConfig::default());
    let l2 = autoropes::run(&kernel, &mut b, &GpuConfig::default().with_l2());
    assert_eq!(a, b, "cache model must not affect computed values");
    assert_eq!(dram.stats.per_point_nodes, l2.stats.per_point_nodes);
    assert!(l2.launch.counters.l2_hits > 0, "hot tree top should hit");
    assert_eq!(dram.launch.counters.l2_hits, 0);
}

#[test]
fn l2_reduces_bus_traffic_and_modeled_time() {
    let (queries, tree, radius) = setup();
    let kernel = PcKernel::new(&tree, radius);
    let mut a: Vec<PcPoint<7>> = queries.iter().map(|&p| PcPoint::new(p)).collect();
    let mut b = a.clone();
    let dram = autoropes::run(&kernel, &mut a, &GpuConfig::default());
    let l2 = autoropes::run(&kernel, &mut b, &GpuConfig::default().with_l2());
    assert!(
        l2.launch.counters.global_bus_bytes < dram.launch.counters.global_bus_bytes,
        "hits must come off the DRAM bus"
    );
    assert!(
        l2.launch.cycles <= dram.launch.cycles,
        "L2 {} should not exceed DRAM-only {}",
        l2.launch.cycles,
        dram.launch.cycles
    );
}

#[test]
fn lockstep_still_wins_with_l2_on_sorted_input() {
    // The paper's coalescing argument survives a hardware cache: lockstep
    // node loads are broadcasts (1 access, hit or miss), while scattered
    // per-lane loads still touch many distinct lines of the (much larger
    // than one warp-slice) tree.
    let (queries, tree, radius) = setup();
    let kernel = PcKernel::new(&tree, radius);
    let cfg = GpuConfig::default().with_l2();
    let mut n_pts: Vec<PcPoint<7>> = queries.iter().map(|&p| PcPoint::new(p)).collect();
    let mut l_pts = n_pts.clone();
    let n = autoropes::run(&kernel, &mut n_pts, &cfg);
    let l = lockstep::run(&kernel, &mut l_pts, &cfg);
    assert!(
        l.ms() < n.ms(),
        "lockstep {:.3} ms should still beat non-lockstep {:.3} ms with L2 enabled",
        l.ms(),
        n.ms()
    );
}
