//! Property tests over the executor matrix: for randomly drawn workloads,
//! the §3.3 equivalences hold across all execution strategies.

use gts_apps::pc::{PcKernel, PcPoint};
use gts_apps::vp::{VpKernel, VpPoint};
use gts_points::gen::uniform;
use gts_runtime::cpu;
use gts_runtime::gpu::{autoropes, lockstep, recursive, GpuConfig};
use gts_runtime::report::work_expansion;
use gts_trees::{KdTree, SplitPolicy, VpTree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unguided kernels: every executor computes identical counts and the
    /// two iterative executors agree with the recursive baseline on
    /// per-point visit counts.
    #[test]
    fn prop_pc_executor_matrix(n in 2usize..250, seed in 0u64..100, r in 0.05f32..1.2) {
        let data = uniform::<3>(n, seed);
        let tree = KdTree::build(&data, 4, SplitPolicy::MedianCycle);
        let kernel = PcKernel::new(&tree, r);
        let cfg = GpuConfig::default();
        let fresh = || data.iter().map(|&p| PcPoint::new(p)).collect::<Vec<_>>();

        let mut c = fresh();
        let cr = cpu::run_sequential(&kernel, &mut c);
        let mut a = fresh();
        let ar = autoropes::run(&kernel, &mut a, &cfg);
        let mut l = fresh();
        let lr = lockstep::run(&kernel, &mut l, &cfg);
        let mut g = fresh();
        let _gr = recursive::run(&kernel, &mut g, &cfg, false);

        // Identical results everywhere.
        prop_assert_eq!(&c, &a);
        prop_assert_eq!(&c, &l);
        prop_assert_eq!(&c, &g);
        // Autoropes preserves per-point visit counts exactly (§3.3).
        prop_assert_eq!(&cr.stats.per_point_nodes, &ar.stats.per_point_nodes);
        // Work expansion is always ≥ 1 and finite.
        if !lr.per_warp_nodes.is_empty() {
            let (mean, sd) = work_expansion(&lr.per_warp_nodes, &ar.stats.per_point_nodes);
            prop_assert!(mean >= 1.0 - 1e-9);
            prop_assert!(sd.is_finite());
        }
    }

    /// Guided kernels under lockstep: the §4.3 vote may change traversal
    /// orders but never the computed nearest neighbor.
    #[test]
    fn prop_vp_lockstep_vote_preserves_answers(n in 2usize..200, seed in 0u64..100) {
        let data = uniform::<3>(n, seed);
        let tree = VpTree::build(&data, 4);
        let kernel = VpKernel::new(&tree);
        let cfg = GpuConfig::default();

        let mut reference: Vec<VpPoint<3>> = data.iter().map(|&p| VpPoint::new(p)).collect();
        cpu::run_sequential(&kernel, &mut reference);
        let mut voted: Vec<VpPoint<3>> = data.iter().map(|&p| VpPoint::new(p)).collect();
        lockstep::run(&kernel, &mut voted, &cfg);
        for (r, v) in reference.iter().zip(&voted) {
            prop_assert_eq!(r.best_d.to_bits(), v.best_d.to_bits());
        }
    }

    /// Simulated *work* is monotone in problem size: a superset of points
    /// issues at least as many warp steps, transactions, and node visits.
    /// (Modeled *time* is deliberately not monotone — extra resident warps
    /// unlock latency hiding, as on real hardware.)
    #[test]
    fn prop_simulated_work_grows_with_points(seed in 0u64..50) {
        let data = uniform::<3>(512, seed);
        let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
        let kernel = PcKernel::new(&tree, 0.4);
        let cfg = GpuConfig::default();
        let mut small: Vec<PcPoint<3>> = data.iter().take(64).map(|&p| PcPoint::new(p)).collect();
        let mut large: Vec<PcPoint<3>> = data.iter().map(|&p| PcPoint::new(p)).collect();
        let rs = autoropes::run(&kernel, &mut small, &cfg);
        let rl = autoropes::run(&kernel, &mut large, &cfg);
        prop_assert!(rl.launch.counters.warp_steps >= rs.launch.counters.warp_steps);
        prop_assert!(rl.launch.counters.global_transactions >= rs.launch.counters.global_transactions);
        prop_assert!(rl.launch.counters.node_visits >= rs.launch.counters.node_visits);
        prop_assert!(rl.launch.counters.issue_cycles >= rs.launch.counters.issue_cycles);
    }
}
