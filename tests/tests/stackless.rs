//! Differential oracle for the stackless executors: a batch forced
//! through the Wald stack-free walk (`stackless-kd`) or the skip-link
//! walk (`stackless-bvh`) must produce exactly the results of autoropes
//! and lockstep, which in turn must agree with a flat CPU [`KdIndex`]
//! over the same dataset. The executor's stack discipline is an
//! execution detail, not a semantics change — and the stackless ones
//! must report exactly zero rope-stack traffic while saying so.
//!
//! Plus property tests pinning the left-balanced implicit layout: the
//! builder emits a permutation of its input, the heap-order partition
//! invariant holds at every node, and `locate` descends to a leaf whose
//! path respects every split plane.

use gts_points::gen::uniform;
use gts_service::{Backend, ExecPolicy, KdIndex, OpKey, QueryResult, ShardedIndex, TreeIndex};
use gts_trees::{LbKdTree, PointN, SplitPolicy, NO_NODE};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const N_POINTS: usize = 3000;
const N_QUERIES: usize = 2000;

/// Seeded query mix: half uniform over the cube, half hugging dataset
/// points (so near/far culling and skip jumps both engage).
fn queries(pts: &[PointN<3>], seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..N_QUERIES)
        .map(|i| {
            if i % 2 == 0 {
                (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect()
            } else {
                let anchor = pts[rng.gen_range(0..pts.len())];
                anchor
                    .0
                    .iter()
                    .map(|&c| c + rng.gen_range(-0.02f32..0.02))
                    .collect()
            }
        })
        .collect()
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-6) || (a.is_infinite() && b.is_infinite())
}

/// Distances agree with the flat CPU oracle within f32 epsilon (ids may
/// legitimately differ on exact ties, distances may not).
fn check_vs_flat(want: &QueryResult, got: &QueryResult, label: &str, q: usize) {
    match (want, got) {
        (QueryResult::Nn { dist2: wd, .. }, QueryResult::Nn { dist2: gd, .. }) => {
            assert!(close(*wd, *gd), "{label}, query {q}: {wd} vs {gd}");
        }
        (QueryResult::Knn { dist2: wd, .. }, QueryResult::Knn { dist2: gd, .. }) => {
            assert_eq!(wd.len(), gd.len(), "{label}, query {q}");
            for (j, (a, b)) in wd.iter().zip(gd).enumerate() {
                assert!(
                    close(*a, *b),
                    "{label}, query {q}, neighbor {j}: {a} vs {b}"
                );
            }
        }
        (QueryResult::Pc { count: wc }, QueryResult::Pc { count: gc }) => {
            assert_eq!(wc, gc, "{label}, query {q}");
        }
        _ => panic!("mismatched result variants"),
    }
}

#[test]
fn stackless_matches_every_other_executor_and_flat_cpu() {
    let pts = uniform::<3>(N_POINTS, 0x57ac);
    let qs = queries(&pts, 0x1e55);
    let flat = KdIndex::build("flat", &pts, 8, SplitPolicy::MedianCycle);
    let cpu = ExecPolicy::forced(Backend::Cpu);
    for op in [OpKey::Nn, OpKey::Knn(8), OpKey::Pc(0.15f32.to_bits())] {
        let want = flat.run_batch(op, &qs, &cpu);
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build("sharded", &pts, shards, 8, SplitPolicy::MedianCycle);
            let auto = idx.run_batch(op, &qs, &ExecPolicy::forced(Backend::Autoropes));
            let lock = idx.run_batch(op, &qs, &ExecPolicy::forced(Backend::Lockstep));
            let kd = idx.run_batch(op, &qs, &ExecPolicy::forced(Backend::StacklessKd));
            let bvh = idx.run_batch(op, &qs, &ExecPolicy::forced(Backend::StacklessBvh));
            // Bit-identical across executors: the stackless walks cull
            // exactly the subtrees whose points the update rules would
            // reject anyway, and lockstep's extra union visits likewise
            // never survive the kernel's acceptance test.
            assert_eq!(
                auto.results, kd.results,
                "{shards} shards, {op:?}: wald walk diverged from autoropes"
            );
            assert_eq!(
                auto.results, bvh.results,
                "{shards} shards, {op:?}: skip walk diverged from autoropes"
            );
            assert_eq!(
                auto.results, lock.results,
                "{shards} shards, {op:?}: lockstep diverged from autoropes"
            );
            // The headline counters: the stackless executors move zero
            // rope-stack bytes; the rope-stack executor pays for its own.
            for out in [&kd, &bvh] {
                assert_eq!(out.stack_bytes_peak, 0, "{shards} shards, {op:?}");
                assert_eq!(out.stack_transactions, 0, "{shards} shards, {op:?}");
            }
            assert!(auto.stack_bytes_peak > 0, "{shards} shards, {op:?}");
            assert!(auto.stack_transactions > 0, "{shards} shards, {op:?}");
            // And all of them agree with the flat CPU oracle.
            assert_eq!(kd.results.len(), want.results.len());
            let label = format!("{shards} shards, {op:?}");
            for (q, (w, g)) in want.results.iter().zip(&kd.results).enumerate() {
                check_vs_flat(w, g, &label, q);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The left-balanced builder is a pure relabeling: `perm` is a
    /// permutation of the input and `points[i] == input[perm[i]]`, with
    /// the heap-order partition invariant intact (checked by
    /// `validate`).
    #[test]
    fn lb_layout_round_trips_the_input(
        n in 1usize..300,
        seed in 0u64..1_000_000_000,
    ) {
        let pts = uniform::<3>(n, seed);
        let tree = LbKdTree::build(&pts);
        tree.validate().expect("structural invariants");
        prop_assert_eq!(tree.n_nodes(), n);
        let mut seen = vec![false; n];
        for (i, &src) in tree.perm.iter().enumerate() {
            prop_assert!(!seen[src as usize], "perm not a permutation");
            seen[src as usize] = true;
            prop_assert_eq!(tree.points[i], pts[src as usize]);
        }
    }

    /// Implicit navigation round-trips: every non-root node's parent
    /// link inverts the child link, and `locate` lands on a node whose
    /// root path respects each split plane for the query point.
    #[test]
    fn lb_navigation_and_locate_respect_split_planes(
        n in 1usize..300,
        seed in 0u64..1_000_000_000,
    ) {
        let pts = uniform::<3>(n, seed);
        let tree = LbKdTree::build(&pts);
        for node in 0..n as u32 {
            let (l, r) = (tree.left(node), tree.right(node));
            if l != NO_NODE {
                prop_assert_eq!(tree.parent(l), node);
            }
            if r != NO_NODE {
                prop_assert_eq!(tree.parent(r), node);
            }
            prop_assert_eq!(tree.is_leaf(node), l == NO_NODE && r == NO_NODE);
        }
        for p in &pts {
            let mut node = tree.locate(p);
            prop_assert!(tree.is_leaf(node) || tree.left(node) == NO_NODE);
            // Walk back to the root checking each plane crossing was the
            // one `locate` should have taken (or a forced sibling detour
            // where the preferred child does not exist in the array).
            while node != 0 {
                let parent = tree.parent(node);
                let axis = tree.split_dim[parent as usize] as usize;
                let went_left = tree.left(parent) == node;
                let prefers_left = p[axis] < tree.points[parent as usize][axis];
                let forced = if prefers_left {
                    tree.left(parent) == NO_NODE
                } else {
                    tree.right(parent) == NO_NODE
                };
                prop_assert!(went_left == prefers_left || forced);
                node = parent;
            }
        }
    }
}
