//! Differential oracle for parallel sharded dispatch: running a batch
//! through the scoped-thread wave scheduler must produce exactly the
//! results of the sequential round-by-round dispatcher, which in turn
//! must agree with a flat [`KdIndex`] over the same dataset. Parallelism
//! and AABB-bound pruning are execution details, not semantics changes.
//!
//! Plus property tests pinning the profile-cache contract: a miss returns
//! exactly what a fresh profiler run returns, and a hit replays the
//! memoized decision verbatim under a fixed seed.

use gts_points::gen::uniform;
use gts_points::profile::{
    profile_key, profile_sortedness, profile_sortedness_cached, ProfileCache,
};
use gts_service::{Backend, ExecPolicy, KdIndex, OpKey, QueryResult, ShardedIndex, TreeIndex};
use gts_trees::{PointN, SplitPolicy};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const N_POINTS: usize = 3000;
const N_QUERIES: usize = 2000;

/// Seeded query mix: half uniform over the cube, half hugging dataset
/// points (tight bounds, so wave-1 pruning actually engages).
fn queries(pts: &[PointN<3>], seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..N_QUERIES)
        .map(|i| {
            if i % 2 == 0 {
                (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect()
            } else {
                let anchor = pts[rng.gen_range(0..pts.len())];
                anchor
                    .0
                    .iter()
                    .map(|&c| c + rng.gen_range(-0.02f32..0.02))
                    .collect()
            }
        })
        .collect()
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-6) || (a.is_infinite() && b.is_infinite())
}

fn sequential() -> ExecPolicy {
    ExecPolicy {
        force: Some(Backend::Cpu),
        shard_parallelism: 1,
        profile_cache: false,
        ..ExecPolicy::default()
    }
}

fn parallel(threads: usize) -> ExecPolicy {
    ExecPolicy {
        force: Some(Backend::Cpu),
        shard_parallelism: threads,
        profile_cache: false,
        ..ExecPolicy::default()
    }
}

/// Distances agree with the flat oracle within f32 epsilon (ids may
/// legitimately differ on exact ties, distances may not).
fn check_vs_flat(want: &QueryResult, got: &QueryResult, shards: usize, q: usize) {
    match (want, got) {
        (QueryResult::Nn { dist2: wd, .. }, QueryResult::Nn { dist2: gd, .. }) => {
            assert!(close(*wd, *gd), "{shards} shards, query {q}: {wd} vs {gd}");
        }
        (QueryResult::Knn { dist2: wd, .. }, QueryResult::Knn { dist2: gd, .. }) => {
            assert_eq!(wd.len(), gd.len(), "{shards} shards, query {q}");
            for (j, (a, b)) in wd.iter().zip(gd).enumerate() {
                assert!(
                    close(*a, *b),
                    "{shards} shards, query {q}, neighbor {j}: {a} vs {b}"
                );
            }
        }
        (QueryResult::Pc { count: wc }, QueryResult::Pc { count: gc }) => {
            assert_eq!(wc, gc, "{shards} shards, query {q}");
        }
        _ => panic!("mismatched result variants"),
    }
}

#[test]
fn parallel_matches_sequential_and_flat_for_every_op_and_shard_count() {
    let pts = uniform::<3>(N_POINTS, 0x5eed);
    let qs = queries(&pts, 0xfeed);
    let flat = KdIndex::build("flat", &pts, 8, SplitPolicy::MedianCycle);
    for op in [OpKey::Nn, OpKey::Knn(8), OpKey::Pc(0.15f32.to_bits())] {
        let want = flat.run_batch(op, &qs, &sequential());
        for shards in SHARD_COUNTS {
            let idx = ShardedIndex::build("sharded", &pts, shards, 8, SplitPolicy::MedianCycle);
            let seq = idx.run_batch(op, &qs, &sequential());
            let par = idx.run_batch(op, &qs, &parallel(4));
            // Bit-identical between the two dispatchers: both fold the
            // same per-query shard supersets in visit order, and every
            // merge admits only strict improvements.
            assert_eq!(
                seq.results, par.results,
                "{shards} shards, {op:?}: parallel diverged from sequential"
            );
            assert_eq!(seq.results.len(), want.results.len());
            for (q, (w, g)) in want.results.iter().zip(&seq.results).enumerate() {
                check_vs_flat(w, g, shards, q);
            }
        }
    }
}

#[test]
fn parallel_matches_sequential_under_default_profiling_policy() {
    // No forced backend: the §4.4 profiler (and the profile cache, warmed
    // by the first run) picks executors per sub-batch. All executors are
    // exact, so results must still match bit-for-bit across dispatchers.
    let pts = uniform::<3>(N_POINTS, 0xbead);
    let qs = queries(&pts, 0xdead);
    let idx = ShardedIndex::build("sharded", &pts, 8, 8, SplitPolicy::MedianCycle);
    let seq = ExecPolicy {
        shard_parallelism: 1,
        ..ExecPolicy::default()
    };
    let par = ExecPolicy {
        shard_parallelism: 4,
        ..ExecPolicy::default()
    };
    for op in [OpKey::Nn, OpKey::Knn(8)] {
        let s = idx.run_batch(op, &qs[..512], &seq);
        let p = idx.run_batch(op, &qs[..512], &par);
        assert_eq!(s.results, p.results, "{op:?} diverged under default policy");
    }
    let stats = idx.profile_cache_stats();
    assert!(
        stats.hits + stats.misses > 0,
        "default policy never consulted the profile cache"
    );
}

/// Deterministic fake traversal: each point visits a seeded window of
/// node ids, so neighboring points overlap partially and the profiler's
/// similarity is a nontrivial function of (seed, i).
fn visits_for(seed: u64) -> impl Fn(usize) -> Vec<u32> + Copy {
    move |i: usize| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (i as u64 >> 2));
        let base: u32 = rng.gen_range(0..64);
        (base..base + 8).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache miss must return exactly what an uncached profiler run
    /// returns — memoization never changes the decision, only skips the
    /// sampling.
    #[test]
    fn cache_miss_equals_fresh_profiler_run(
        n in 2usize..64,
        pairs in 1usize..16,
        seed in 0u64..1_000_000_000,
    ) {
        let visits = visits_for(seed);
        let fresh = profile_sortedness(n, pairs, 0.5, seed, visits);
        let cache = ProfileCache::new(8, 16);
        let key = profile_key(seed, &[n as u64, pairs as u64]);
        let (missed, outcome) =
            profile_sortedness_cached(&cache, key, 0, n, pairs, 0.5, seed, visits);
        prop_assert!(!outcome.hit);
        prop_assert_eq!(&missed, &fresh);
        // And the memoized entry replays that exact report on a hit.
        let (hit, outcome) =
            profile_sortedness_cached(&cache, key, 1, n, pairs, 0.5, seed, visits);
        prop_assert!(outcome.hit);
        prop_assert_eq!(&hit, &fresh);
    }

    /// Under a fixed seed the whole cached pipeline is deterministic:
    /// same inputs, same key, same decision — across separate caches.
    #[test]
    fn cached_decisions_are_deterministic_under_fixed_seed(
        n in 2usize..64,
        pairs in 1usize..16,
        seed in 0u64..1_000_000_000,
        epoch in 0u64..1000,
    ) {
        let visits = visits_for(seed);
        let key_a = profile_key(seed, &[n as u64, pairs as u64]);
        let key_b = profile_key(seed, &[n as u64, pairs as u64]);
        prop_assert_eq!(key_a, key_b);
        let run = || {
            let cache = ProfileCache::new(8, 16);
            profile_sortedness_cached(&cache, key_a, epoch, n, pairs, 0.5, seed, visits).0
        };
        prop_assert_eq!(run(), run());
    }
}
