//! Fused multi-op traversal oracle.
//!
//! One union-pruned tree walk answers NN + kNN + PC for a lane; the
//! answers must be bit-identical to running each op as its own batch —
//! across shard counts, forced backends, mixed op subsets per lane, and
//! a mid-epoch mutation window with deltas pending. A property test pins
//! the soundness argument underneath: union admission never prunes a
//! node any constituent op's solo walk would visit.

use gts_apps::fused::{fused_ops_kernel, fused_ops_point};
use gts_apps::kbest::KBest;
use gts_apps::knn::{KnnKernel, KnnPoint};
use gts_apps::nn::{NnAabbKernel, NnPoint};
use gts_apps::pc::{PcKernel, PcPoint};
use gts_points::gen::uniform;
use gts_runtime::cpu::trace_one;
use gts_service::{
    Backend, ExecPolicy, FusedLane, FusedLaneResult, KdIndex, MutableIndexBuilder, Mutation, OpKey,
    QueryResult, ShardedIndex, TreeIndex,
};
use gts_trees::{KdTree, PointN, SplitPolicy};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

const KS: [usize; 2] = [3, 8];
const RADII: [f32; 2] = [0.08, 0.2];

/// Seeded mixed lanes: positions near dataset anchors, each lane asking
/// a random non-empty subset of {NN, kNN(3), kNN(8), PC(r1), PC(r2)}.
fn mixed_lanes(data: &[PointN<3>], n: usize, seed: u64) -> Vec<FusedLane> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let anchor = data[rng.gen_range(0..data.len())];
            let pos: Vec<f32> = anchor
                .0
                .iter()
                .map(|&c| c + rng.gen_range(-0.05f32..0.05))
                .collect();
            let mut lane = FusedLane::empty(pos);
            lane.nn = rng.gen_bool(0.5);
            for k in KS {
                if rng.gen_bool(0.5) {
                    lane.knn_ks.push(k);
                }
            }
            for r in RADII {
                if rng.gen_bool(0.5) {
                    lane.pc_radii.push(r.to_bits());
                }
            }
            if lane.ops() == 0 {
                lane.nn = true;
            }
            lane
        })
        .collect()
}

/// Today's per-op dispatch over the same lanes: gather each op's
/// positions, run one batch per op, scatter results back into the
/// lanes' slot order.
fn unfused_answers(
    index: &dyn TreeIndex,
    lanes: &[FusedLane],
    policy: &ExecPolicy,
) -> Vec<FusedLaneResult> {
    let mut ops: Vec<OpKey> = Vec::new();
    for lane in lanes {
        if lane.nn && !ops.contains(&OpKey::Nn) {
            ops.push(OpKey::Nn);
        }
        for &k in &lane.knn_ks {
            if !ops.contains(&OpKey::Knn(k)) {
                ops.push(OpKey::Knn(k));
            }
        }
        for &bits in &lane.pc_radii {
            if !ops.contains(&OpKey::Pc(bits)) {
                ops.push(OpKey::Pc(bits));
            }
        }
    }
    let mut by_op: HashMap<OpKey, HashMap<usize, QueryResult>> = HashMap::new();
    for op in ops {
        let asked: Vec<usize> = lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| match op {
                OpKey::Nn => l.nn,
                OpKey::Knn(k) => l.knn_ks.contains(&k),
                OpKey::Pc(bits) => l.pc_radii.contains(&bits),
            })
            .map(|(i, _)| i)
            .collect();
        let pos: Vec<Vec<f32>> = asked.iter().map(|&i| lanes[i].pos.clone()).collect();
        let out = index.run_batch(op, &pos, policy);
        by_op.insert(
            op,
            asked
                .into_iter()
                .zip(out.results)
                .collect::<HashMap<_, _>>(),
        );
    }
    lanes
        .iter()
        .enumerate()
        .map(|(i, lane)| FusedLaneResult {
            nn: lane.nn.then(|| by_op[&OpKey::Nn][&i].clone()),
            knn: lane
                .knn_ks
                .iter()
                .map(|&k| by_op[&OpKey::Knn(k)][&i].clone())
                .collect(),
            pc: lane
                .pc_radii
                .iter()
                .map(|&bits| by_op[&OpKey::Pc(bits)][&i].clone())
                .collect(),
        })
        .collect()
}

/// Bit-identical per-op equality between two lane-result sets.
fn assert_identical(got: &[FusedLaneResult], want: &[FusedLaneResult], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: lane count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.nn, w.nn, "{ctx}: lane {i} nn");
        assert_eq!(g.knn, w.knn, "{ctx}: lane {i} knn");
        assert_eq!(g.pc, w.pc, "{ctx}: lane {i} pc");
    }
}

/// Value-level equality (distances and counts, not ids) — used against
/// the flat CPU oracle, where an id may legitimately differ on an exact
/// distance tie between index structures.
fn assert_values_match(got: &[FusedLaneResult], want: &[FusedLaneResult], ctx: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        match (&g.nn, &w.nn) {
            (Some(QueryResult::Nn { dist2: a, .. }), Some(QueryResult::Nn { dist2: b, .. })) => {
                assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: lane {i} nn dist2")
            }
            (None, None) => {}
            _ => panic!("{ctx}: lane {i} nn shape"),
        }
        for (s, (gk, wk)) in g.knn.iter().zip(&w.knn).enumerate() {
            let (QueryResult::Knn { dist2: a, .. }, QueryResult::Knn { dist2: b, .. }) = (gk, wk)
            else {
                panic!("{ctx}: lane {i} knn slot {s} shape")
            };
            let abits: Vec<u32> = a.iter().map(|d| d.to_bits()).collect();
            let bbits: Vec<u32> = b.iter().map(|d| d.to_bits()).collect();
            assert_eq!(abits, bbits, "{ctx}: lane {i} knn slot {s}");
        }
        assert_eq!(g.pc, w.pc, "{ctx}: lane {i} pc");
    }
}

#[test]
fn fused_matches_unfused_and_flat_cpu_across_shards_and_backends() {
    let pts = uniform::<3>(600, 4213);
    let flat = KdIndex::build("fuse-flat", &pts, 8, SplitPolicy::MedianCycle);
    let cpu = ExecPolicy::forced(Backend::Cpu);
    for (mix, seed) in [(48usize, 71u64), (17, 72)] {
        let lanes = mixed_lanes(&pts, mix, seed);
        let oracle = unfused_answers(&flat, &lanes, &cpu);
        for shards in [1usize, 2, 8] {
            let index: Box<dyn TreeIndex> = if shards == 1 {
                Box::new(KdIndex::build("fuse-kd", &pts, 8, SplitPolicy::MedianCycle))
            } else {
                Box::new(ShardedIndex::build(
                    "fuse-sharded",
                    &pts,
                    shards,
                    8,
                    SplitPolicy::MedianCycle,
                ))
            };
            for backend in [
                Backend::Lockstep,
                Backend::Autoropes,
                Backend::StacklessKd,
                Backend::StacklessBvh,
            ] {
                let policy = ExecPolicy::forced(backend);
                let ctx = format!("{shards} shard(s), {}", backend.name());
                let fused = index
                    .run_fused(&lanes, &policy)
                    .unwrap_or_else(|| panic!("{ctx}: index supports fused dispatch"));
                let want = unfused_answers(index.as_ref(), &lanes, &policy);
                assert_identical(&fused.lanes, &want, &ctx);
                assert_values_match(&fused.lanes, &oracle, &format!("{ctx} vs flat CPU"));
                assert!(fused.outcome.node_visits > 0, "{ctx}: no work recorded");
            }
        }
    }
}

#[test]
fn fused_stays_exact_mid_epoch_window() {
    let pts = uniform::<3>(512, 977);
    // auto_merge(false) freezes the epoch mid-window: the deltas stay
    // pending, so every fused answer must flow through the widened-k
    // sweep plus per-constituent corrections.
    let idx = MutableIndexBuilder::new("fuse-epoch", 2)
        .auto_merge(false)
        .build(&pts);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut muts = Vec::new();
    for _ in 0..40 {
        let anchor = pts[rng.gen_range(0..pts.len())];
        muts.push(Mutation::Insert {
            pos: anchor
                .0
                .iter()
                .map(|&c| c + rng.gen_range(-0.03f32..0.03))
                .collect(),
        });
    }
    for id in (0..512u32).step_by(17) {
        muts.push(Mutation::Delete { id });
    }
    idx.mutate(&muts).expect("mutations are valid");
    assert!(idx.stats().pending > 0, "deltas must still be in flight");

    let lanes = mixed_lanes(&pts, 40, 5150);
    for backend in [Backend::Autoropes, Backend::Cpu] {
        let policy = ExecPolicy::forced(backend);
        let ctx = format!("mid-epoch, {}", backend.name());
        let fused = idx
            .run_fused(&lanes, &policy)
            .unwrap_or_else(|| panic!("{ctx}: mutable index supports fused dispatch"));
        let want = unfused_answers(&idx, &lanes, &policy);
        assert_identical(&fused.lanes, &want, &ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Union admission soundness: every node a constituent op's solo
    /// walk visits is also visited by the fused walk — the fused visit
    /// set is a superset of each op's, so no constituent can lose an
    /// update to over-pruning.
    #[test]
    fn union_admission_never_prunes_a_constituent_node(
        seed in 0u64..512,
        qx in 0.0f32..1.0,
        qy in 0.0f32..1.0,
        qz in 0.0f32..1.0,
        k in 1usize..12,
        r in 0.01f32..0.4,
    ) {
        let pts = uniform::<3>(300, seed);
        let tree = KdTree::build(&pts, 8, SplitPolicy::MedianCycle);
        let q = PointN([qx, qy, qz]);

        let fused_kernel = fused_ops_kernel(&tree);
        let mut fp = fused_ops_point(q, true, Some(k), &[r]);
        let fused_visits: HashSet<_> =
            trace_one(&fused_kernel, &mut fp).into_iter().collect();

        let nn_kernel = NnAabbKernel::new(&tree);
        let mut np = NnPoint::new(q);
        for node in trace_one(&nn_kernel, &mut np) {
            prop_assert!(fused_visits.contains(&node), "NN visits {node}, fused pruned it");
        }
        let knn_kernel = KnnKernel::new(&tree);
        let mut kp = KnnPoint { pos: q, best: KBest::new(k) };
        for node in trace_one(&knn_kernel, &mut kp) {
            prop_assert!(fused_visits.contains(&node), "kNN visits {node}, fused pruned it");
        }
        let pc_kernel = PcKernel::new(&tree, r);
        let mut pp = PcPoint::new(q);
        for node in trace_one(&pc_kernel, &mut pp) {
            prop_assert!(fused_visits.contains(&node), "PC visits {node}, fused pruned it");
        }
    }
}
