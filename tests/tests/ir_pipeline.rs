//! The compiler pipeline against the hand-written kernels: transformed IR
//! programs must be node-for-node and bit-for-bit equivalent to the
//! benchmarks they describe, on every executor.

use gts_ir::adapter::IrKernel;
use gts_ir::examples_ir::{bh_ir, figure4_pc, BhOps, BhState, PcOps, PcState};
use gts_ir::interp::{run_autoropes, run_recursive};
use gts_ir::transform::transform;
use gts_points::gen;
use gts_runtime::cpu;
use gts_runtime::gpu::{autoropes, lockstep, GpuConfig};
use gts_trees::layout::NodeBytes;
use gts_trees::{KdTree, Octree, PointN, SplitPolicy};

#[test]
fn compiled_bh_matches_handwritten_bitwise() {
    let bodies = gen::plummer(800, 51);
    let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
    let tree = Octree::build(&pos, &mass, 4);
    let theta = 0.5f32;
    let eps = 0.05f32;

    // Hand-written kernel.
    let hand = gts_apps::bh::BhKernel::new(&tree, theta, eps);
    let mut hand_pts: Vec<gts_apps::bh::BhPoint> =
        pos.iter().map(|&p| gts_apps::bh::BhPoint::new(p)).collect();
    let hand_r = cpu::run_sequential(&hand, &mut hand_pts);

    // Compiled IR kernel with the same parameters.
    let prog = transform(&bh_ir(), false).expect("BH transforms");
    let root_size = tree.size[0];
    let dsq = (root_size / theta) * (root_size / theta);
    let ir_kernel: IrKernel<_, 1, false, 1> = IrKernel::new(
        prog,
        BhOps {
            tree: &tree,
            eps2: eps * eps,
        },
        NodeBytes::oct(),
        [dsq],
    );
    let mut ir_pts: Vec<BhState> = pos
        .iter()
        .map(|&p| BhState {
            pos: p,
            acc: PointN::zero(),
        })
        .collect();
    let ir_r = cpu::run_sequential(&ir_kernel, &mut ir_pts);

    assert_eq!(
        hand_r.stats.per_point_nodes, ir_r.stats.per_point_nodes,
        "visit counts differ between compiled and hand-written BH"
    );
    for (h, i) in hand_pts.iter().zip(&ir_pts) {
        assert_eq!(h.acc, i.acc, "bitwise accumulation mismatch");
    }
}

#[test]
fn compiled_bh_runs_lockstep_on_simulator() {
    let bodies = gen::random_bodies(500, 52);
    let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
    let tree = Octree::build(&pos, &mass, 4);
    let prog = transform(&bh_ir(), false).expect("transform");
    let dsq = (tree.size[0] / 0.5) * (tree.size[0] / 0.5);
    let ir_kernel: IrKernel<_, 1, false, 1> = IrKernel::new(
        prog,
        BhOps {
            tree: &tree,
            eps2: 2.5e-3,
        },
        NodeBytes::oct(),
        [dsq],
    );

    let mk = || {
        pos.iter()
            .map(|&p| BhState {
                pos: p,
                acc: PointN::zero(),
            })
            .collect::<Vec<_>>()
    };
    let mut cpu_pts = mk();
    cpu::run_sequential(&ir_kernel, &mut cpu_pts);
    let mut ls_pts = mk();
    let report = lockstep::run(&ir_kernel, &mut ls_pts, &GpuConfig::default());
    assert_eq!(
        cpu_pts, ls_pts,
        "lockstep execution of the compiled kernel diverged"
    );
    assert!(report.launch.counters.global_transactions > 0);
}

#[test]
fn ir_interpreter_and_runtime_agree_on_visit_counts() {
    let data = gen::uniform::<3>(600, 53);
    let tree = KdTree::build(&data, 4, SplitPolicy::MedianCycle);
    let radius = 0.3f32;
    let prog = transform(&figure4_pc(), false).expect("transform");
    let ops = PcOps {
        tree: &tree,
        radius2: radius * radius,
    };

    // Interpreter trace lengths vs. runtime per-point counts, per query.
    let kernel: IrKernel<_, 1, false, 0> = IrKernel::new(
        prog.clone(),
        PcOps {
            tree: &tree,
            radius2: radius * radius,
        },
        NodeBytes::kd(3),
        [],
    );
    let mut rt_pts: Vec<PcState<3>> = data.iter().map(|&p| PcState { pos: p, count: 0 }).collect();
    let rt = autoropes::run(&kernel, &mut rt_pts, &GpuConfig::default());
    for (i, q) in data.iter().enumerate().take(64) {
        let mut st = PcState { pos: *q, count: 0 };
        let trace = run_autoropes(&prog, &ops, &mut st, &[]);
        assert_eq!(
            trace.visits.len() as u32,
            rt.stats.per_point_nodes[i],
            "query {i}: interpreter and runtime disagree on visit count"
        );
        assert_eq!(st.count, rt_pts[i].count);
    }
}

#[test]
fn recursive_and_autoropes_interp_traces_match_for_bh() {
    let bodies = gen::plummer(300, 54);
    let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
    let tree = Octree::build(&pos, &mass, 2);
    let ops = BhOps {
        tree: &tree,
        eps2: 1e-4,
    };
    let prog = transform(&bh_ir(), false).expect("transform");
    let dsq = (tree.size[0] / 0.4) * (tree.size[0] / 0.4);
    for q in pos.iter().take(32) {
        let mut a = BhState {
            pos: *q,
            acc: PointN::zero(),
        };
        let mut b = a.clone();
        let t1 = run_recursive(&prog.ir, &ops, &mut a, &[dsq]);
        let t2 = run_autoropes(&prog, &ops, &mut b, &[dsq]);
        assert_eq!(t1, t2, "§3.3 violated for query at {q:?}");
    }
}
