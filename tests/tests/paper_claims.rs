//! The paper's central qualitative claims, asserted as tests.
//!
//! Each test names the claim and the section it comes from. These run at
//! reduced scale (a few thousand points) — every claim asserted here is
//! one that already holds at this size; scale-sensitive crossovers are
//! exercised by the harness and discussed in EXPERIMENTS.md.

use gts_apps::bh::{BhKernel, BhPoint};
use gts_apps::knn::{KnnKernel, KnnPoint};
use gts_apps::pc::{PcKernel, PcPoint};
use gts_points::gen;
use gts_points::sort::{apply_perm, morton_order, shuffle};
use gts_runtime::gpu::{autoropes, lockstep, recursive, GpuConfig};
use gts_runtime::report::work_expansion;
use gts_trees::{Aabb, KdTree, Octree, PointN, SplitPolicy};

fn pc_setup(n: usize) -> (Vec<PointN<7>>, KdTree<7>, f32) {
    let data = gen::covtype_like(n, 17);
    let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
    let bbox = Aabb::of_points(&data);
    let radius = 0.04 * bbox.lo.dist(&bbox.hi);
    (data, tree, radius)
}

/// §6.2: “our GPU implementations are far faster than naïve recursive
/// implementations on GPUs … our autoropes transformation is able to
/// deliver significant improvements.”
#[test]
fn autoropes_beats_naive_recursion() {
    let (data, tree, radius) = pc_setup(8_000);
    let kernel = PcKernel::new(&tree, radius);
    let cfg = GpuConfig::default();
    let mut a: Vec<PcPoint<7>> = data.iter().map(|&p| PcPoint::new(p)).collect();
    let mut b = a.clone();
    let ar = autoropes::run(&kernel, &mut a, &cfg);
    let rec = recursive::run(&kernel, &mut b, &cfg, false);
    assert!(
        rec.ms() > 1.3 * ar.ms(),
        "recursion {:.2} ms vs autoropes {:.2} ms",
        rec.ms(),
        ar.ms()
    );
}

/// §4.2/§6.2: for a sorted, unguided workload, lockstep outperforms
/// non-lockstep despite visiting more nodes.
#[test]
fn lockstep_wins_on_sorted_unguided_input() {
    let (data, tree, radius) = pc_setup(8_000);
    let kernel = PcKernel::new(&tree, radius);
    let cfg = GpuConfig::default();
    let sorted = apply_perm(&data, &morton_order(&data));
    let mut n_pts: Vec<PcPoint<7>> = sorted.iter().map(|&p| PcPoint::new(p)).collect();
    let mut l_pts = n_pts.clone();
    let n = autoropes::run(&kernel, &mut n_pts, &cfg);
    let l = lockstep::run(&kernel, &mut l_pts, &cfg);
    assert!(
        l.stats.avg_nodes() > n.stats.avg_nodes(),
        "lockstep must visit more nodes (the union)"
    );
    assert!(
        l.ms() < n.ms(),
        "lockstep {:.2} ms should beat non-lockstep {:.2} ms on sorted input",
        l.ms(),
        n.ms()
    );
}

/// §6.3 / Table 2: sorting bounds lockstep work expansion — sorted
/// expansion is strictly lower than unsorted, and both are ≥ 1.
#[test]
fn sorting_bounds_work_expansion() {
    let (data, tree, radius) = pc_setup(6_000);
    let kernel = PcKernel::new(&tree, radius);
    let cfg = GpuConfig::default();

    let mut expansions = Vec::new();
    for sorted in [true, false] {
        let queries = if sorted {
            apply_perm(&data, &morton_order(&data))
        } else {
            let mut v = data.clone();
            shuffle(&mut v, 3);
            v
        };
        let mut n_pts: Vec<PcPoint<7>> = queries.iter().map(|&p| PcPoint::new(p)).collect();
        let mut l_pts = n_pts.clone();
        let n = autoropes::run(&kernel, &mut n_pts, &cfg);
        let l = lockstep::run(&kernel, &mut l_pts, &cfg);
        let (mean, sd) = work_expansion(&l.per_warp_nodes, &n.stats.per_point_nodes);
        assert!(mean >= 1.0, "expansion below 1: {mean}");
        assert!(sd >= 0.0);
        expansions.push(mean);
    }
    assert!(
        expansions[0] < expansions[1],
        "sorted {} !< unsorted {}",
        expansions[0],
        expansions[1]
    );
}

/// §6.2 (Table 1 pattern): the lockstep “Avg. # Nodes” is the warp union —
/// sorted and unsorted differ for L, while N's per-point counts are a
/// property of the point alone and identical under reordering.
#[test]
fn avg_nodes_pattern_l_varies_n_does_not() {
    let (data, tree, radius) = pc_setup(4_000);
    let kernel = PcKernel::new(&tree, radius);
    let cfg = GpuConfig::default();
    let sorted = apply_perm(&data, &morton_order(&data));
    let mut unsorted = data.clone();
    shuffle(&mut unsorted, 9);

    let run_pair = |queries: &[PointN<7>]| {
        let mut n_pts: Vec<PcPoint<7>> = queries.iter().map(|&p| PcPoint::new(p)).collect();
        let mut l_pts = n_pts.clone();
        let n = autoropes::run(&kernel, &mut n_pts, &cfg);
        let l = lockstep::run(&kernel, &mut l_pts, &cfg);
        (n.stats.avg_nodes(), l.stats.avg_nodes())
    };
    let (n_sorted, l_sorted) = run_pair(&sorted);
    let (n_unsorted, l_unsorted) = run_pair(&unsorted);
    // N's average is order-invariant (same multiset of traversals).
    assert!((n_sorted - n_unsorted).abs() < 1e-9);
    // L's union shrinks dramatically when points are sorted.
    assert!(l_sorted < 0.8 * l_unsorted, "{l_sorted} vs {l_unsorted}");
}

/// §4.3/§6.2: for guided algorithms on unsorted inputs, the non-lockstep
/// variant wins (the vote drags points down wrong paths and the union
/// explodes).
#[test]
fn guided_unsorted_prefers_non_lockstep() {
    let data = gen::covtype_like(6_000, 23);
    let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
    let kernel = KnnKernel::new(&tree);
    let cfg = GpuConfig::default();
    let mut queries = data.clone();
    shuffle(&mut queries, 7);
    let mut n_pts: Vec<KnnPoint<7>> = queries.iter().map(|&p| KnnPoint::new(p, 8)).collect();
    let mut l_pts = n_pts.clone();
    let n = autoropes::run(&kernel, &mut n_pts, &cfg);
    let l = lockstep::run(&kernel, &mut l_pts, &cfg);
    assert!(
        n.ms() < l.ms(),
        "non-lockstep {:.2} ms should beat lockstep {:.2} ms on unsorted guided",
        n.ms(),
        l.ms()
    );
}

/// §5.2: the shared-memory rope stack (per warp) reduces lockstep BH cost
/// relative to keeping the warp stack in global memory.
#[test]
fn shared_memory_stack_helps_lockstep_bh() {
    let bodies = gen::plummer(8_000, 31);
    let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
    let tree = Octree::build(&pos, &mass, 8);
    let kernel = BhKernel::new(&tree, 0.5, 0.05);
    let sorted = apply_perm(&pos, &morton_order(&pos));
    let mk = || {
        sorted
            .iter()
            .map(|&p| BhPoint::new(p))
            .collect::<Vec<BhPoint>>()
    };

    let global_cfg = GpuConfig::default();
    let shared_cfg = GpuConfig::default().with_shared_stack();
    let mut a = mk();
    let g = lockstep::run(&kernel, &mut a, &global_cfg);
    let mut b = mk();
    let s = lockstep::run(&kernel, &mut b, &shared_cfg);
    assert_eq!(a, b, "stack layout must not change results");
    assert!(
        s.ms() <= g.ms(),
        "shared stack {:.3} ms should not lose to global stack {:.3} ms",
        s.ms(),
        g.ms()
    );
}

/// §3.3: the autoropes transformation preserves results bit-for-bit, even
/// for the order-sensitive floating-point accumulation of BH forces.
#[test]
fn autoropes_preserves_fp_accumulation_order() {
    let bodies = gen::random_bodies(3_000, 37);
    let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
    let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
    let tree = Octree::build(&pos, &mass, 8);
    let kernel = BhKernel::new(&tree, 0.6, 0.05);
    let mut cpu_pts: Vec<BhPoint> = pos.iter().map(|&p| BhPoint::new(p)).collect();
    let mut gpu_pts = cpu_pts.clone();
    gts_runtime::cpu::run_sequential(&kernel, &mut cpu_pts);
    autoropes::run(&kernel, &mut gpu_pts, &GpuConfig::default());
    // Bitwise equality: same visit order ⇒ same f32 rounding.
    assert_eq!(cpu_pts, gpu_pts);
}
