//! Every benchmark × every executor returns exactly the right answer.
//!
//! The apps' own unit tests cover uniform data; these integration tests
//! sweep the *surrogate* inputs (clustered, projected, power-law) where
//! degenerate geometry is most likely to break pruning logic.

use gts_apps::knn::{KnnKernel, KnnPoint};
use gts_apps::nn::{NnKernel, NnPoint};
use gts_apps::oracle;
use gts_apps::pc::{PcKernel, PcPoint};
use gts_apps::vp::{VpKernel, VpPoint};
use gts_points::gen;
use gts_runtime::gpu::{autoropes, lockstep, recursive, GpuConfig};
use gts_trees::{Aabb, KdTree, PointN, SplitPolicy, VpTree};

const N: usize = 700;

fn all_inputs_7d() -> Vec<(&'static str, Vec<PointN<7>>)> {
    vec![
        ("covtype", gen::covtype_like(N, 41)),
        ("mnist", gen::mnist_like(N, 42)),
        ("random", gen::uniform::<7>(N, 43)),
    ]
}

#[test]
fn pc_exact_on_all_surrogates() {
    let cfg = GpuConfig::default();
    for (name, data) in all_inputs_7d() {
        let tree = KdTree::build(&data, 4, SplitPolicy::MedianCycle);
        let bbox = Aabb::of_points(&data);
        let radius = 0.05 * bbox.lo.dist(&bbox.hi);
        let kernel = PcKernel::new(&tree, radius);
        for run in 0..3 {
            let mut pts: Vec<PcPoint<7>> = data.iter().map(|&p| PcPoint::new(p)).collect();
            match run {
                0 => drop(autoropes::run(&kernel, &mut pts, &cfg)),
                1 => drop(lockstep::run(&kernel, &mut pts, &cfg)),
                _ => drop(recursive::run(&kernel, &mut pts, &cfg, false)),
            }
            for (i, p) in pts.iter().enumerate() {
                assert_eq!(
                    p.count,
                    oracle::pc_count(&data, &data[i], radius),
                    "{name} run {run} point {i}"
                );
            }
        }
    }
}

#[test]
fn knn_exact_on_all_surrogates() {
    let cfg = GpuConfig::default();
    let k = 5;
    for (name, data) in all_inputs_7d() {
        let tree = KdTree::build(&data, 4, SplitPolicy::MedianCycle);
        let kernel = KnnKernel::new(&tree);
        for run in 0..2 {
            let mut pts: Vec<KnnPoint<7>> = data.iter().map(|&p| KnnPoint::new(p, k)).collect();
            match run {
                0 => drop(autoropes::run(&kernel, &mut pts, &cfg)),
                _ => drop(lockstep::run(&kernel, &mut pts, &cfg)),
            }
            for (i, p) in pts.iter().enumerate() {
                let want = oracle::knn_dists(&data, &data[i], k);
                for (g, w) in p.best.distances().iter().zip(&want) {
                    assert!(
                        (g - w).abs() <= 1e-4 * w.max(1.0),
                        "{name} run {run} point {i}: {g} vs {w}"
                    );
                }
            }
        }
    }
}

#[test]
fn nn_exact_on_geocity_clusters() {
    // Geocity's extreme clustering stresses midpoint splits (empty-side
    // fallbacks) and the split-plane bounds.
    let data = gen::geocity_like(N, 44);
    let tree = KdTree::build(&data, 4, SplitPolicy::MidpointWidest);
    let kernel = NnKernel::new(&tree);
    let cfg = GpuConfig::default();
    let mut pts: Vec<NnPoint<2>> = data.iter().map(|&p| NnPoint::new(p)).collect();
    lockstep::run(&kernel, &mut pts, &cfg);
    for (i, p) in pts.iter().enumerate() {
        let want = oracle::nn_dist2_nonself(&data, &data[i]);
        assert!(
            (p.best_d2 - want).abs() <= 1e-4 * want.max(1e-6),
            "point {i}: {} vs {want}",
            p.best_d2
        );
    }
}

#[test]
fn vp_exact_on_mnist_surrogate() {
    let data = gen::mnist_like(N, 45);
    let tree = VpTree::build(&data, 4);
    let kernel = VpKernel::new(&tree);
    let cfg = GpuConfig::default();
    for lockstep_run in [false, true] {
        let mut pts: Vec<VpPoint<7>> = data.iter().map(|&p| VpPoint::new(p)).collect();
        if lockstep_run {
            lockstep::run(&kernel, &mut pts, &cfg);
        } else {
            recursive::run(&kernel, &mut pts, &cfg, true);
        }
        for (i, p) in pts.iter().enumerate() {
            let want = oracle::nn_dist2_nonself(&data, &data[i]).sqrt();
            assert!(
                (p.best_d - want).abs() <= 1e-3 * want.max(1e-4) + 1e-5,
                "lockstep={lockstep_run} point {i}: {} vs {want}",
                p.best_d
            );
        }
    }
}

#[test]
fn degenerate_inputs_do_not_break_executors() {
    // All-coincident points: zero distances everywhere, zero-extent boxes.
    let data = vec![PointN([1.0f32, 2.0]); 100];
    let tree = KdTree::build(&data, 4, SplitPolicy::MedianCycle);
    let kernel = PcKernel::new(&tree, 0.0);
    let cfg = GpuConfig::default();
    let mut pts: Vec<PcPoint<2>> = data.iter().map(|&p| PcPoint::new(p)).collect();
    lockstep::run(&kernel, &mut pts, &cfg);
    assert!(pts.iter().all(|p| p.count == 100));
}

#[test]
fn tail_warp_with_partial_mask() {
    // 33 points = one full warp + a 1-lane tail warp: the tail's partial
    // mask must flow through pops, ballots and leaf scans in every
    // executor.
    let data = gen::uniform::<2>(33, 46);
    let tree = KdTree::build(&data, 4, SplitPolicy::MedianCycle);
    let kernel = PcKernel::new(&tree, 0.5);
    let cfg = GpuConfig::default();
    let mk = || data.iter().map(|&p| PcPoint::new(p)).collect::<Vec<_>>();
    let mut a = mk();
    let ar = autoropes::run(&kernel, &mut a, &cfg);
    let mut l = mk();
    let lr = lockstep::run(&kernel, &mut l, &cfg);
    let mut r = mk();
    recursive::run(&kernel, &mut r, &cfg, true);
    assert_eq!(ar.per_warp_nodes.len(), 2);
    assert_eq!(lr.per_warp_nodes.len(), 2);
    for (i, p) in data.iter().enumerate() {
        let want = oracle::pc_count(&data, p, 0.5);
        assert_eq!(a[i].count, want);
        assert_eq!(l[i].count, want);
        assert_eq!(r[i].count, want);
    }
}

#[test]
fn single_point_single_lane() {
    let data = vec![PointN([5.0f32, -3.0])];
    let tree = KdTree::build(&data, 4, SplitPolicy::MedianCycle);
    let kernel = PcKernel::new(&tree, 1.0);
    let cfg = GpuConfig::default();
    let mut pts = vec![PcPoint::new(data[0])];
    let r = autoropes::run(&kernel, &mut pts, &cfg);
    assert_eq!(pts[0].count, 1);
    assert_eq!(r.per_warp_nodes.len(), 1);
}
