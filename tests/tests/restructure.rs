//! End-to-end test of the §3.2 restructuring transformation: an *in-order*
//! traversal (update between the two recursive calls — not
//! pseudo-tail-recursive) is restructured into PTR form and executed with
//! autoropes; its results must match true inline recursion on the original
//! kernel, with a deliberately non-commutative update so any reordering
//! shows up.

use gts_ir::analysis::check_pseudo_tail_recursive;
use gts_ir::examples_ir::{non_ptr_kernel, A_UPDATE, C_IS_LEAF};
use gts_ir::interp::{run_autoropes, run_recursive_inline};
use gts_ir::ir::{ActionId, CondId, KernelOps, SelId, XformId};
use gts_ir::restructure::restructure;
use gts_ir::transform::transform;
use gts_trees::NodeId;

/// Implicit complete binary tree with an order-sensitive accumulator.
struct InOrderOps {
    depth: usize,
}

impl InOrderOps {
    fn n(&self) -> usize {
        (1usize << (self.depth + 1)) - 1
    }
}

#[derive(Clone, Debug, PartialEq)]
struct Acc(u64);

impl KernelOps for InOrderOps {
    type Point = Acc;
    fn cond(&self, c: CondId, _p: &Acc, node: NodeId, _args: &[f32]) -> bool {
        assert_eq!(c, C_IS_LEAF);
        (node as usize) >= self.n() / 2
    }
    fn update(&self, a: ActionId, p: &mut Acc, node: NodeId, _args: &[f32]) {
        assert_eq!(a, A_UPDATE);
        // Non-commutative: ordering changes the result.
        p.0 = p.0.wrapping_mul(31).wrapping_add(node as u64 + 1);
    }
    fn select_child(&self, _s: SelId, _p: &Acc, _n: NodeId, _a: &[f32]) -> u8 {
        unreachable!()
    }
    fn xform(&self, _x: XformId, _a: &[f32], _n: NodeId) -> f32 {
        unreachable!()
    }
    fn child(&self, node: NodeId, slot: u8) -> Option<NodeId> {
        if (node as usize) >= self.n() / 2 || slot > 1 {
            None
        } else {
            Some(2 * node + 1 + slot as u32)
        }
    }
    fn n_nodes(&self) -> usize {
        self.n()
    }
    fn is_leaf(&self, node: NodeId) -> bool {
        (node as usize) >= self.n() / 2
    }
}

#[test]
fn restructured_inorder_traversal_matches_true_recursion() {
    let original = non_ptr_kernel();
    assert!(
        check_pseudo_tail_recursive(&original).is_err(),
        "the test subject must start out non-PTR"
    );
    let ops = InOrderOps { depth: 6 };

    // Oracle: true inline recursion on the original kernel — the classic
    // in-order traversal.
    let mut oracle = Acc(0);
    let oracle_trace = run_recursive_inline(&original, &ops, &mut oracle, &[]);

    // Pipeline: restructure → (now PTR) → autoropes transform → execute.
    let restructured = restructure(&original).expect("restructure succeeds");
    assert_eq!(
        restructured.pushed.len(),
        1,
        "one in-order update pushed down"
    );
    let prog = transform(&restructured.ir, false).expect("restructured kernel transforms");

    let mut result = Acc(0);
    let rope_trace = run_autoropes(&prog, &ops, &mut result, &[0.0, 0.0]);

    // Same node-visit order (§3.3) and — the §3.2 payoff — the same
    // non-commutative accumulation: the pushed-down update ran at exactly
    // the point the original in-order code ran it.
    assert_eq!(oracle_trace.visits, rope_trace.visits);
    assert_eq!(oracle, result, "in-order update sequence was reordered");
}

#[test]
fn restructured_kernel_handles_single_node_tree() {
    // depth 0: the root is a leaf; the pushed-down path never runs.
    let ops = InOrderOps { depth: 0 };
    let restructured = restructure(&non_ptr_kernel()).expect("restructure");
    let prog = transform(&restructured.ir, false);
    // A single-leaf tree makes no recursive calls at runtime, but the
    // *static* kernel still has them; the transform succeeds.
    let prog = prog.expect("transform");
    let mut acc = Acc(0);
    run_autoropes(&prog, &ops, &mut acc, &[0.0, 0.0]);
    let mut oracle = Acc(0);
    run_recursive_inline(&non_ptr_kernel(), &ops, &mut oracle, &[]);
    assert_eq!(acc, oracle);
}

#[test]
fn pipeline_error_message_guides_to_restructure() {
    // transform() on the raw non-PTR kernel fails with a pointed error;
    // restructure() is the documented fix.
    let err = transform(&non_ptr_kernel(), false).unwrap_err();
    assert!(format!("{err}").contains("pseudo-tail-recursive"));
    assert!(restructure(&non_ptr_kernel()).is_ok());
}
