//! Differential oracle for live index mutation: a [`MutableIndex`] under
//! any script of insert/delete batches must answer exactly like a
//! from-scratch flat [`KdIndex`] built over the same live point multiset
//! — at every instant, not just at epoch boundaries. Every pending-delta
//! window (mutations applied, merge not yet landed) and every
//! post-merge state is pinned, across shard counts × ops × backends.
//!
//! Plus: a writer/reader churn stress with a mid-stream `Service::close`
//! (nothing lost, nothing duplicated, deltas flushed not dropped),
//! property tests for the delta/merge layer, and the shutdown-ordering
//! guarantee that `close` drains the merge thread.

use gts_points::gen::uniform;
use gts_service::{
    Backend, ExecPolicy, KdIndex, MutableIndex, MutableIndexBuilder, Mutation, OpKey, Query,
    QueryKind, QueryResult, Service, ServiceConfig, ServiceError, TreeIndex,
};
use gts_trees::{PointN, SplitPolicy};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const BACKENDS: [Backend; 3] = [Backend::Autoropes, Backend::Lockstep, Backend::StacklessKd];
const N_POINTS: usize = 1200;
const N_QUERIES: usize = 320;
const PC_RADIUS: f32 = 0.15;

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1e-6) || (a.is_infinite() && b.is_infinite())
}

/// Seeded query mix: half uniform, half hugging dataset points (the ones
/// whose neighborhoods the mutation script is churning).
fn query_positions(pts: &[PointN<3>], seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..N_QUERIES)
        .map(|i| {
            if i % 2 == 0 {
                (0..3).map(|_| rng.gen_range(-1.0..1.0f32)).collect()
            } else {
                let anchor = pts[rng.gen_range(0..pts.len())];
                anchor
                    .0
                    .iter()
                    .map(|&c| c + rng.gen_range(-0.02f32..0.02))
                    .collect()
            }
        })
        .collect()
}

/// The mutable index's answers vs a from-scratch flat build over the
/// same live multiset, for every op × backend. Distances must agree
/// within f32 epsilon (ids may differ only on exact ties); kNN ids must
/// be unique (a torn or double-counted shard would duplicate); PC counts
/// must be exactly equal.
fn check_vs_flat_rebuild(idx: &MutableIndex<3>, queries: &[Vec<f32>], ctx: &str) {
    let live: Vec<PointN<3>> = idx.live().into_iter().map(|(_, p)| p).collect();
    assert!(!live.is_empty(), "{ctx}: script emptied the index");
    let flat = KdIndex::build("flat-oracle", &live, 8, SplitPolicy::MedianCycle);
    let cpu = ExecPolicy::forced(Backend::Cpu);
    for op in [OpKey::Nn, OpKey::Knn(8), OpKey::Pc(PC_RADIUS.to_bits())] {
        let want = flat.run_batch(op, queries, &cpu);
        for backend in BACKENDS {
            let got = idx.run_batch(op, queries, &ExecPolicy::forced(backend));
            assert_eq!(got.results.len(), want.results.len());
            for (q, (w, g)) in want.results.iter().zip(&got.results).enumerate() {
                let ctx = format!("{ctx}, {op:?}, {}, query {q}", backend.name());
                match (w, g) {
                    (QueryResult::Nn { dist2: wd, .. }, QueryResult::Nn { dist2: gd, .. }) => {
                        assert!(close(*wd, *gd), "{ctx}: nn {wd} vs {gd}");
                    }
                    (QueryResult::Knn { dist2: wd, .. }, QueryResult::Knn { dist2: gd, ids }) => {
                        assert_eq!(wd.len(), gd.len(), "{ctx}: knn count");
                        for (j, (a, b)) in wd.iter().zip(gd).enumerate() {
                            assert!(close(*a, *b), "{ctx}: knn[{j}] {a} vs {b}");
                        }
                        let unique: HashSet<u32> = ids.iter().copied().collect();
                        assert_eq!(unique.len(), ids.len(), "{ctx}: duplicate knn ids");
                    }
                    (QueryResult::Pc { count: wc }, QueryResult::Pc { count: gc }) => {
                        assert_eq!(wc, gc, "{ctx}: pc count");
                    }
                    _ => panic!("{ctx}: mismatched result variants"),
                }
            }
        }
    }
}

/// One scripted mutation batch: inserts hugging dataset anchors plus
/// deletes of tracked live ids — including, every other step, a
/// delete of an id inserted earlier in the same pending window.
fn scripted_batch(
    pts: &[PointN<3>],
    rng: &mut ChaCha8Rng,
    live_ids: &mut Vec<u32>,
    window_ids: &[u32],
    step: usize,
) -> Vec<Mutation> {
    let mut muts = Vec::new();
    for _ in 0..30 {
        let anchor = pts[rng.gen_range(0..pts.len())];
        muts.push(Mutation::Insert {
            pos: anchor
                .0
                .iter()
                .map(|&c| c + rng.gen_range(-0.05f32..0.05))
                .collect(),
        });
    }
    for _ in 0..20 {
        let at = rng.gen_range(0..live_ids.len());
        muts.push(Mutation::Delete {
            id: live_ids.swap_remove(at),
        });
    }
    if step % 2 == 1 {
        if let Some(&id) = window_ids.first() {
            if let Some(at) = live_ids.iter().position(|&x| x == id) {
                live_ids.swap_remove(at);
                muts.push(Mutation::Delete { id });
            }
        }
    }
    muts
}

#[test]
fn mutable_index_matches_flat_rebuild_at_every_epoch() {
    let pts = uniform::<3>(N_POINTS, 0x11fe);
    let queries = query_positions(&pts, 0xfee1);
    for shards in SHARD_COUNTS {
        // auto_merge(false): each window and each epoch advance happens
        // exactly when the script says, so every state is pinned.
        let idx = MutableIndexBuilder::new("live", shards)
            .auto_merge(false)
            .build(&pts);
        let mut rng = ChaCha8Rng::seed_from_u64(0xab5eed ^ shards as u64);
        let mut live_ids: Vec<u32> = (0..N_POINTS as u32).collect();
        check_vs_flat_rebuild(&idx, &queries, &format!("{shards} shards, epoch 0"));
        let mut window_ids: Vec<u32> = Vec::new();
        for step in 0..3 {
            let muts = scripted_batch(&pts, &mut rng, &mut live_ids, &window_ids, step);
            let ack = idx.mutate(&muts).unwrap();
            assert_eq!(ack.rejected, 0, "script only deletes live ids");
            live_ids.extend(&ack.assigned);
            window_ids = ack.assigned;
            assert!(ack.pending > 0, "window must actually be pending");
            // Pending-delta window: answers exact before any merge.
            check_vs_flat_rebuild(
                &idx,
                &queries,
                &format!("{shards} shards, step {step} window"),
            );
            // Every other step merges immediately; the others stack a
            // second batch into the same window first (multi-batch
            // windows hit the insert-then-delete cancellation paths).
            if step % 2 == 0 {
                assert!(idx.merge_now());
                assert_eq!(idx.pending(), 0);
                check_vs_flat_rebuild(
                    &idx,
                    &queries,
                    &format!("{shards} shards, step {step} merged"),
                );
            }
        }
        idx.quiesce();
        assert_eq!(idx.pending(), 0);
        check_vs_flat_rebuild(&idx, &queries, &format!("{shards} shards, quiesced"));
        // Partition invariant after all merges and any re-splits: every
        // live id in exactly one merged shard.
        let mut seen = HashSet::new();
        let mut total = 0usize;
        for ids in idx.shard_ids() {
            total += ids.len();
            for id in ids {
                assert!(seen.insert(id), "id {id} in two shards");
            }
        }
        assert_eq!(total, live_ids.len(), "{shards} shards: coverage");
        assert_eq!(idx.n_points(), live_ids.len());
    }
}

const WRITERS: usize = 8;
const READERS: usize = 8;

#[test]
fn churn_stress_mid_close_loses_nothing_and_epochs_stay_coherent() {
    let pts = uniform::<3>(1024, 0x57e55);
    let idx = Arc::new(MutableIndexBuilder::new("live", 4).build(&pts));
    let service = Arc::new(Service::start(ServiceConfig {
        max_wait: Duration::from_millis(1),
        workers: 2,
        ..ServiceConfig::default()
    }));
    let index_id = service.register_index(Arc::clone(&idx) as Arc<dyn TreeIndex>);

    let (ins_total, del_total, q_submitted, q_answered, q_rejected) = std::thread::scope(|s| {
        // Writers: each churns insert/delete batches, deleting only ids
        // it inserted itself, until the close lands.
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let service = Arc::clone(&service);
                let pts = &pts;
                s.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(0xa110 ^ w as u64);
                    let mut owned: Vec<u32> = Vec::new();
                    let (mut inserts, mut deletes) = (0u64, 0u64);
                    for _ in 0..4000 {
                        let mut muts = Vec::with_capacity(6);
                        for _ in 0..4 {
                            let anchor = pts[rng.gen_range(0..pts.len())];
                            muts.push(Mutation::Insert {
                                pos: anchor
                                    .0
                                    .iter()
                                    .map(|&c| c + rng.gen_range(-0.05f32..0.05))
                                    .collect(),
                            });
                        }
                        for _ in 0..2 {
                            if owned.len() > 4 {
                                let at = rng.gen_range(0..owned.len());
                                muts.push(Mutation::Delete {
                                    id: owned.swap_remove(at),
                                });
                            }
                        }
                        let n_ins = muts
                            .iter()
                            .filter(|m| matches!(m, Mutation::Insert { .. }))
                            .count() as u64;
                        let n_del = muts.len() as u64 - n_ins;
                        match service.mutate(index_id, &muts) {
                            Ok(ack) => {
                                // A batch is all-or-nothing: every insert
                                // and every live delete applied.
                                assert_eq!(ack.accepted, muts.len() as u64);
                                assert_eq!(ack.rejected, 0);
                                assert_eq!(ack.assigned.len(), n_ins as usize);
                                owned.extend(&ack.assigned);
                                inserts += n_ins;
                                deletes += n_del;
                            }
                            Err(ServiceError::ShuttingDown) => break,
                            Err(e) => panic!("writer {w}: {e:?}"),
                        }
                    }
                    (inserts, deletes)
                })
            })
            .collect();

        // Readers: submit query batches, check every answer for epoch
        // coherence (unique kNN ids, sorted distances), tally accounting.
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let service = Arc::clone(&service);
                let pts = &pts;
                s.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(0x4ead ^ r as u64);
                    let (mut submitted, mut answered, mut rejected) = (0u64, 0u64, 0u64);
                    'outer: for _ in 0..2000 {
                        let mut tickets = Vec::with_capacity(16);
                        for _ in 0..16 {
                            let anchor = pts[rng.gen_range(0..pts.len())];
                            let pos: Vec<f32> = anchor
                                .0
                                .iter()
                                .map(|&c| c + rng.gen_range(-0.1f32..0.1))
                                .collect();
                            submitted += 1;
                            match service.submit(Query {
                                index: index_id,
                                pos,
                                kind: QueryKind::Knn { k: 8 },
                            }) {
                                Ok(t) => tickets.push(t),
                                Err(ServiceError::ShuttingDown) => {
                                    rejected += 1;
                                    // Accepted tickets still resolve.
                                    for t in &tickets {
                                        let res = t.wait().expect("accepted before close");
                                        check_coherent(&res, r);
                                        answered += 1;
                                    }
                                    break 'outer;
                                }
                                Err(e) => panic!("reader {r}: {e:?}"),
                            }
                        }
                        for t in &tickets {
                            let res = t.wait().expect("accepted queries resolve");
                            check_coherent(&res, r);
                            answered += 1;
                        }
                    }
                    (submitted, answered, rejected)
                })
            })
            .collect();

        // Let the churn overlap real merges, then close mid-stream.
        std::thread::sleep(Duration::from_millis(300));
        service.close();

        let (mut ins, mut del) = (0u64, 0u64);
        for w in writers {
            let (i, d) = w.join().unwrap();
            ins += i;
            del += d;
        }
        let (mut sub, mut ans, mut rej) = (0u64, 0u64, 0u64);
        for r in readers {
            let (s_, a, j) = r.join().unwrap();
            sub += s_;
            ans += a;
            rej += j;
        }
        (ins, del, sub, ans, rej)
    });

    // No lost or duplicated answers: every submission either resolved
    // exactly once or was rejected at the door.
    assert_eq!(q_answered + q_rejected, q_submitted);
    assert!(q_answered > 0, "close landed before any query resolved");
    assert!(ins_total > 0, "close landed before any mutation");

    // Close drained the merge machinery: nothing pending, every delta
    // merged, and the live multiset is exactly seed + inserts − deletes.
    assert_eq!(idx.pending(), 0, "close left deltas pending");
    let stats = idx.stats().expect_coherent(1024, ins_total, del_total);
    assert!(stats.merges > 0, "churn never produced a merge");

    // Post-close mutations are rejected deterministically.
    assert!(matches!(
        service.mutate(
            index_id,
            &[Mutation::Insert {
                pos: vec![0.0, 0.0, 0.0]
            }]
        ),
        Err(ServiceError::ShuttingDown)
    ));
    let snapshot = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("all threads joined"))
        .shutdown();
    assert_eq!(snapshot.completed, q_answered);
}

/// Epoch-coherence proxies on one answer: a torn shard set would surface
/// as duplicated ids (one point counted from two shard generations) or
/// unsorted merged distances.
fn check_coherent(res: &QueryResult, reader: usize) {
    let QueryResult::Knn { dist2, ids } = res else {
        panic!("reader {reader}: wrong result kind");
    };
    assert_eq!(dist2.len(), ids.len());
    let unique: HashSet<u32> = ids.iter().copied().collect();
    assert_eq!(unique.len(), ids.len(), "reader {reader}: duplicate ids");
    for w in dist2.windows(2) {
        assert!(w[0] <= w[1], "reader {reader}: unsorted distances");
    }
}

trait StatsExt {
    fn expect_coherent(self, seed: u64, inserts: u64, deletes: u64) -> gts_service::EpochStats;
}

impl StatsExt for gts_service::EpochStats {
    fn expect_coherent(self, seed: u64, inserts: u64, deletes: u64) -> gts_service::EpochStats {
        assert_eq!(self.pending, 0);
        assert_eq!(self.live, seed + inserts - deletes, "live multiset drifted");
        assert_eq!(self.mutations, inserts + deletes);
        self
    }
}

// ---------------------------------------------------------------------
// Shutdown ordering: `Service::close` must flush pending deltas through
// a final merge (never silently dropping them) and reject later
// mutations deterministically.
// ---------------------------------------------------------------------

#[test]
fn close_flushes_pending_deltas_before_returning() {
    let pts = uniform::<3>(256, 0xd0d0);
    // A huge debounce keeps the background thread from merging on its
    // own: any merge observed below was forced by the close path.
    let idx = Arc::new(
        MutableIndexBuilder::new("live", 2)
            .merge_debounce(Duration::from_secs(3600))
            .build(&pts),
    );
    let service = Arc::new(Service::start(ServiceConfig::default()));
    let id = service.register_index(Arc::clone(&idx) as Arc<dyn TreeIndex>);
    let ack = service
        .mutate(
            id,
            &[
                Mutation::Insert {
                    pos: vec![0.1, 0.2, 0.3],
                },
                Mutation::Delete { id: 7 },
            ],
        )
        .unwrap();
    assert_eq!(ack.pending, 2, "debounce must hold the deltas pending");
    assert_eq!(idx.merges(), 0);

    service.close();
    // The deltas were merged, not dropped: epoch advanced, live set
    // reflects both mutations, queries answer against the merged state.
    assert_eq!(idx.pending(), 0, "close dropped pending deltas");
    assert!(idx.merges() >= 1);
    assert!(idx.epoch() >= 1);
    assert_eq!(idx.n_points(), 256);
    let live_ids: HashSet<u32> = idx.live().iter().map(|&(id, _)| id).collect();
    assert!(!live_ids.contains(&7), "pending delete was dropped");
    assert!(live_ids.contains(&256), "pending insert was dropped");
    assert!(matches!(
        service.mutate(id, &[Mutation::Delete { id: 0 }]),
        Err(ServiceError::ShuttingDown)
    ));
    // Queries still flow after close()'s quiesce (close stops intake,
    // not the already-registered read path), and the flushed insert is
    // the zero-distance kNN answer at its own position.
    let out = idx.run_batch(
        OpKey::Knn(1),
        &[vec![0.1, 0.2, 0.3]],
        &ExecPolicy::forced(Backend::Cpu),
    );
    let QueryResult::Knn { dist2, ids } = &out.results[0] else {
        panic!("knn answered with a different op");
    };
    assert_eq!(dist2, &[0.0]);
    assert_eq!(ids, &[256], "the flushed insert answers exactly");
    drop(service);
}

// ---------------------------------------------------------------------
// Property tests for the delta/merge layer.
// ---------------------------------------------------------------------

/// Reference model: the live multiset as `(id, point)` pairs, maintained
/// naively.
fn naive_apply(
    pts: &[PointN<3>],
    script: &[(bool, usize)],
) -> (Vec<(u32, PointN<3>)>, Vec<Mutation>) {
    let mut next_id = pts.len() as u32;
    let mut live: Vec<(u32, PointN<3>)> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as u32, p))
        .collect();
    let mut muts = Vec::new();
    for &(insert, x) in script {
        if insert || live.len() <= 1 {
            let p = PointN([
                (x % 97) as f32 / 97.0,
                (x % 89) as f32 / 89.0,
                (x % 83) as f32 / 83.0,
            ]);
            muts.push(Mutation::Insert { pos: p.0.to_vec() });
            live.push((next_id, p));
            next_id += 1;
        } else {
            let at = x % live.len();
            let (id, _) = live.remove(at);
            muts.push(Mutation::Delete { id });
        }
    }
    (live, muts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inserting any batch and then deleting exactly the assigned ids
    /// round-trips to the identity multiset — before and after the merge.
    #[test]
    fn insert_then_delete_roundtrips_to_identity(
        n_pts in 8usize..64,
        n_ins in 1usize..24,
        seed in 0u64..1_000_000,
        merge_between in 0u8..2,
    ) {
        let merge_between = merge_between == 1;
        let pts = uniform::<3>(n_pts, seed);
        let idx = MutableIndexBuilder::new("prop", 2)
            .auto_merge(false)
            .build(&pts);
        let before = idx.live();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let muts: Vec<Mutation> = (0..n_ins)
            .map(|_| Mutation::Insert {
                pos: (0..3).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
            })
            .collect();
        let ack = idx.mutate(&muts).unwrap();
        prop_assert_eq!(ack.assigned.len(), n_ins);
        if merge_between {
            idx.merge_now();
        }
        let dels: Vec<Mutation> = ack
            .assigned
            .iter()
            .map(|&id| Mutation::Delete { id })
            .collect();
        let ack = idx.mutate(&dels).unwrap();
        prop_assert_eq!(ack.accepted, n_ins as u64);
        prop_assert_eq!(ack.rejected, 0);
        prop_assert_eq!(idx.live(), before.clone());
        idx.merge_now();
        prop_assert_eq!(idx.live(), before);
    }

    /// Merging any delta sequence produces exactly the naive rebuild's
    /// multiset, and the merged tree answers like a flat build over it.
    #[test]
    fn merge_of_any_delta_sequence_equals_naive_rebuild(
        n_pts in 4usize..48,
        script_len in 1usize..40,
        seed in 0u64..1_000_000,
        split in 0usize..4,
    ) {
        let mut srng = ChaCha8Rng::seed_from_u64(seed ^ 0x5c819);
        let script: Vec<(bool, usize)> = (0..script_len)
            .map(|_| (srng.gen_range(0..2) == 0, srng.gen_range(0..1000usize)))
            .collect();
        let pts = uniform::<3>(n_pts, seed);
        let idx = MutableIndexBuilder::new("prop", 2)
            .auto_merge(false)
            .build(&pts);
        let (mut want_live, muts) = naive_apply(&pts, &script);
        // Split the script into up to `split`+1 batches with merges in
        // between — the multiset must be path-independent.
        let chunk = (muts.len() / (split + 1)).max(1);
        for batch in muts.chunks(chunk) {
            let ack = idx.mutate(batch).unwrap();
            prop_assert_eq!(ack.rejected, 0);
            idx.merge_now();
            prop_assert_eq!(idx.pending(), 0);
        }
        want_live.sort_by_key(|&(id, _)| id);
        prop_assert_eq!(idx.live(), want_live.clone());
        // And the merged tree is semantically the flat rebuild.
        if !want_live.is_empty() {
            let flat_pts: Vec<PointN<3>> = want_live.iter().map(|&(_, p)| p).collect();
            let flat = KdIndex::build("flat", &flat_pts, 8, SplitPolicy::MedianCycle);
            let cpu = ExecPolicy::forced(Backend::Cpu);
            let qs: Vec<Vec<f32>> = pts.iter().take(8).map(|p| p.0.to_vec()).collect();
            let want = flat.run_batch(OpKey::Knn(4), &qs, &cpu);
            let got = idx.run_batch(OpKey::Knn(4), &qs, &cpu);
            for (w, g) in want.results.iter().zip(&got.results) {
                let (QueryResult::Knn { dist2: wd, .. }, QueryResult::Knn { dist2: gd, .. }) =
                    (w, g)
                else {
                    panic!("knn answered with a different op");
                };
                prop_assert_eq!(wd.len(), gd.len());
                for (a, b) in wd.iter().zip(gd) {
                    prop_assert!(close(*a, *b), "{} vs {}", a, b);
                }
            }
        }
    }

    /// Morton re-splits during merge preserve the partition invariant:
    /// merged shards are disjoint, cover every live id, and are never
    /// empty — no matter how skewed the insert mix.
    #[test]
    fn resplit_preserves_partition_invariant(
        n_pts in 16usize..128,
        n_skew in 32usize..300,
        corner in 0u8..8,
        seed in 0u64..1_000_000,
    ) {
        let pts = uniform::<3>(n_pts, seed);
        let idx = MutableIndexBuilder::new("prop", 4)
            .auto_merge(false)
            .build(&pts);
        // Pour a skewed cluster into one octant corner.
        let base: Vec<f32> = (0..3)
            .map(|d| if corner >> d & 1 == 1 { 0.9 } else { -0.9 })
            .collect();
        let muts: Vec<Mutation> = (0..n_skew)
            .map(|i| Mutation::Insert {
                pos: base.iter().map(|&c| c + (i as f32) * 1e-5).collect(),
            })
            .collect();
        idx.mutate(&muts).unwrap();
        idx.merge_now();
        let mut seen = HashSet::new();
        let mut total = 0usize;
        for ids in idx.shard_ids() {
            prop_assert!(!ids.is_empty(), "empty merged shard");
            total += ids.len();
            for id in ids {
                prop_assert!(seen.insert(id), "id {} in two shards", id);
            }
        }
        prop_assert_eq!(total, n_pts + n_skew);
        let live_ids: HashSet<u32> = idx.live().iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(seen, live_ids);
    }
}
