//! Acceptance test for `gts-service`: 10k concurrent queries across two
//! indices return exactly what the sequential CPU oracle computes —
//! batching, Morton sorting, profiling, and executor choice must all be
//! invisible to callers.

use gts_apps::oracle;
use gts_points::gen::{geocity_like, uniform};
use gts_service::{KdIndex, Query, QueryKind, QueryResult, Service, ServiceConfig, TreeIndex};
use gts_trees::{PointN, SplitPolicy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

const N_POINTS: usize = 1024;
const N_QUERIES: usize = 10_000;
const SUBMITTERS: usize = 8;

#[derive(Clone)]
enum Expected {
    Nn(f32),
    Knn(Vec<f32>),
    Pc(u32),
}

struct Case {
    query: Query,
    expected: Expected,
}

/// Pre-compute the oracle answer for one query.
fn with_oracle<const D: usize>(
    data: &[PointN<D>],
    index: usize,
    pos: PointN<D>,
    kind: QueryKind,
) -> Case {
    let expected = match kind {
        QueryKind::Nn => Expected::Nn(oracle::nn_dist2_nonself(data, &pos)),
        QueryKind::Knn { k } => Expected::Knn(oracle::knn_dists(data, &pos, k)),
        QueryKind::Pc { radius } => Expected::Pc(oracle::pc_count(data, &pos, radius)),
    };
    Case {
        query: Query {
            index,
            pos: pos.0.to_vec(),
            kind,
        },
        expected,
    }
}

fn check(result: &QueryResult, expected: &Expected, ctx: usize) {
    match (result, expected) {
        (QueryResult::Nn { dist2, .. }, Expected::Nn(want)) => {
            if want.is_finite() {
                assert!(
                    (dist2 - want).abs() <= 1e-5 * want.max(1e-6),
                    "query {ctx}: nn {dist2} vs oracle {want}"
                );
            } else {
                assert!(dist2.is_infinite(), "query {ctx}");
            }
        }
        (QueryResult::Knn { dist2, .. }, Expected::Knn(want)) => {
            assert_eq!(dist2.len(), want.len(), "query {ctx}: knn count");
            for (got, want) in dist2.iter().zip(want) {
                assert!(
                    (got - want).abs() <= 1e-5 * want.max(1e-6),
                    "query {ctx}: knn {got} vs oracle {want}"
                );
            }
        }
        (QueryResult::Pc { count }, Expected::Pc(want)) => {
            assert_eq!(count, want, "query {ctx}: pc count");
        }
        _ => panic!("query {ctx}: result variant does not match query kind"),
    }
}

#[test]
fn ten_thousand_concurrent_queries_match_sequential_oracle() {
    let pts3 = uniform::<3>(N_POINTS, 1301);
    let pts2 = geocity_like(N_POINTS, 1302);

    // Seeded mixed workload, clustered near dataset points.
    let mut rng = ChaCha8Rng::seed_from_u64(9000);
    let cases: Vec<Case> = (0..N_QUERIES)
        .map(|_| {
            let kind = match rng.gen_range(0..10u32) {
                0..=4 => QueryKind::Nn,
                // Include k > n occasionally: k is clamped by reality, the
                // oracle truncates the same way.
                5..=7 => QueryKind::Knn {
                    k: [4, 8, 2 * N_POINTS][rng.gen_range(0..3usize)],
                },
                _ => QueryKind::Pc { radius: 0.1 },
            };
            if rng.gen_bool(0.5) {
                let anchor = pts3[rng.gen_range(0..N_POINTS)];
                let pos = PointN(std::array::from_fn(|d| {
                    anchor.0[d] + rng.gen_range(-0.02f32..0.02)
                }));
                with_oracle(&pts3, 0, pos, kind)
            } else {
                let anchor = pts2[rng.gen_range(0..N_POINTS)];
                let pos = PointN(std::array::from_fn(|d| {
                    anchor.0[d] + rng.gen_range(-0.02f32..0.02)
                }));
                with_oracle(&pts2, 1, pos, kind)
            }
        })
        .collect();

    let service = Service::start(ServiceConfig {
        batch_queries: 256,
        max_wait: Duration::from_millis(5),
        workers: 4,
        ..ServiceConfig::default()
    });
    let id3 =
        service.register_index(
            Arc::new(KdIndex::build("u3", &pts3, 8, SplitPolicy::MedianCycle))
                as Arc<dyn TreeIndex>,
        );
    let id2 =
        service.register_index(
            Arc::new(KdIndex::build("g2", &pts2, 8, SplitPolicy::MidpointWidest))
                as Arc<dyn TreeIndex>,
        );
    assert_eq!((id3, id2), (0, 1), "test indices assume registration order");

    // Concurrent submitters: each owns a stripe of the case list, submits
    // all queries, then waits on its tickets.
    std::thread::scope(|scope| {
        for stripe in 0..SUBMITTERS {
            let service = &service;
            let cases = &cases;
            scope.spawn(move || {
                let mine: Vec<usize> = (stripe..cases.len()).step_by(SUBMITTERS).collect();
                let tickets: Vec<_> = mine
                    .iter()
                    .map(|&i| {
                        let c = &cases[i];
                        service.submit(c.query.clone()).expect("submit succeeds")
                    })
                    .collect();
                for (&i, t) in mine.iter().zip(&tickets) {
                    let result = t.wait().expect("query succeeds");
                    check(&result, &cases[i].expected, i);
                }
            });
        }
    });

    let snapshot = service.shutdown();
    assert_eq!(snapshot.submitted, N_QUERIES as u64);
    assert_eq!(snapshot.completed, N_QUERIES as u64);
    assert_eq!(snapshot.rejected, 0);
    assert!(snapshot.batches > 0);
    assert!(
        snapshot.mean_batch_size > 1.0,
        "the batcher actually coalesced (mean {})",
        snapshot.mean_batch_size
    );
}
