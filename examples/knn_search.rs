//! Guided traversal in practice: k-nearest-neighbor search, sorted vs
//! unsorted inputs, lockstep vs non-lockstep, with the run-time sortedness
//! profiler (paper §4.4) making the variant decision.
//!
//! ```text
//! cargo run --release --example knn_search [n_points] [k]
//! ```

use gpu_tree_traversals::prelude::*;
use gts_apps::knn::{KnnKernel, KnnPoint};
use gts_points::profile::{profile_sortedness, DEFAULT_THRESHOLD};
use gts_points::sort::{apply_perm, morton_order, shuffle};
use gts_runtime::cpu::trace_one;
use gts_runtime::gpu::{autoropes, lockstep};

fn run_variants<const D: usize>(
    label: &str,
    queries: &[PointN<D>],
    kernel: &KnnKernel<'_, D>,
    k: usize,
) {
    let cfg = GpuConfig::default();
    let fresh = || {
        queries
            .iter()
            .map(|&p| KnnPoint::new(p, k))
            .collect::<Vec<_>>()
    };

    // Profiler: sample neighboring queries, compare traversal similarity,
    // decide lockstep vs non-lockstep (§4.4).
    let report = profile_sortedness(queries.len(), 16, DEFAULT_THRESHOLD, 99, |i| {
        // Record the visit list of query i by running its own traversal
        // (cheap: a handful of samples).
        let mut p = KnnPoint::new(queries[i], k);
        trace_one(kernel, &mut p)
    });

    let mut n_pts = fresh();
    let n_run = autoropes::run(kernel, &mut n_pts, &cfg);
    let mut l_pts = fresh();
    let l_run = lockstep::run(kernel, &mut l_pts, &cfg);

    let chosen = if report.use_lockstep {
        "lockstep"
    } else {
        "non-lockstep"
    };
    let actually_faster = if l_run.ms() < n_run.ms() {
        "lockstep"
    } else {
        "non-lockstep"
    };
    println!(
        "{label:<10} similarity {:.2} → profiler picks {chosen:<13} | L {:>8.2} ms, N {:>8.2} ms (faster: {actually_faster})",
        report.mean_similarity,
        l_run.ms(),
        n_run.ms(),
    );

    // Both variants return identical neighbor sets (§4.3 equivalence).
    for (a, b) in n_pts.iter().zip(&l_pts) {
        assert_eq!(a.best.distances(), b.best.distances());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    let data = gts_points::gen::covtype_like(n, 3);
    let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
    let kernel = KnnKernel::new(&tree);
    println!("kNN, {n} points, k = {k}, kd-tree depth {}\n", tree.depth());

    let sorted = apply_perm(&data, &morton_order(&data));
    run_variants("sorted", &sorted, &kernel, k);

    let mut unsorted = data.clone();
    shuffle(&mut unsorted, 5);
    run_variants("unsorted", &unsorted, &kernel, k);
}
