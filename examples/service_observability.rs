//! Observability walkthrough: drive the query service, then export what it
//! saw — a Chrome trace of every query's lifecycle and a Prometheus text
//! snapshot of the bounded histogram metrics.
//!
//! ```text
//! cargo run --release --example service_observability
//! ```
//!
//! Load the printed trace file in <https://ui.perfetto.dev> (or
//! `chrome://tracing`): pid 1 holds one track per batch with the batch
//! execution spans and per-shard sub-batch spans nested inside; pid 2
//! holds one track per query, where the gap between the `enqueue` tick and
//! the covering batch span is exactly the queue wait the histograms report.

use gpu_tree_traversals::service::{
    Query, QueryKind, Service, ServiceConfig, ShardedIndex, TreeIndex,
};
use gpu_tree_traversals::trees::SplitPolicy;
use gts_points::gen::geocity_like;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let pts = geocity_like(8_000, 20130901);
    let service = Service::start(ServiceConfig {
        batch_queries: 64,
        max_wait: Duration::from_millis(1),
        trace_capacity: 16_384,
        ..ServiceConfig::default()
    });
    let id = service.register_index(Arc::new(ShardedIndex::build(
        "cities",
        &pts,
        4,
        8,
        SplitPolicy::MidpointWidest,
    )) as Arc<dyn TreeIndex>);

    // A burst of clustered queries: enough to fill several warp-multiple
    // batches and exercise every event kind.
    let tickets: Vec<_> = pts
        .iter()
        .take(512)
        .map(|p| {
            service
                .submit(Query {
                    index: id,
                    pos: p.0.to_vec(),
                    kind: QueryKind::Knn { k: 4 },
                })
                .expect("valid query")
        })
        .collect();
    let (snapshot, trace) = service.shutdown_with_trace();
    for t in &tickets {
        t.wait().expect("query succeeds");
    }

    // The trace and the metrics describe the same run: one batch span per
    // dispatched batch.
    assert_eq!(trace.batch_spans() as u64, snapshot.batches);
    assert_eq!(trace.complete_spans(), tickets.len());
    assert!(trace.shard_visit_spans() > 0, "sharded runs emit sub-spans");

    let dir = std::env::temp_dir();
    let trace_path = dir.join("gts_service_trace.json");
    let prom_path = dir.join("gts_service_metrics.prom");
    std::fs::write(&trace_path, trace.to_chrome_json()).expect("write trace");
    std::fs::write(&prom_path, snapshot.to_prometheus()).expect("write metrics");

    println!(
        "{} queries → {} batches, {} trace events ({} dropped)",
        snapshot.completed,
        snapshot.batches,
        trace.events.len(),
        trace.dropped
    );
    println!(
        "latency p50 {:.2} ms / p99 {:.2} ms / p99.9 {:.2} ms / max {:.2} ms",
        snapshot.latency_p50_ms,
        snapshot.latency_p99_ms,
        snapshot.latency_p999_ms,
        snapshot.latency_max_ms
    );
    println!(
        "mean mask occupancy {:.2}, mean work expansion {:.2}",
        snapshot.mean_mask_occupancy, snapshot.mean_work_expansion
    );
    println!(
        "trace  : {} (open in https://ui.perfetto.dev)",
        trace_path.display()
    );
    println!("metrics: {}", prom_path.display());
}
