//! Minimal `gts-service` walkthrough: register two indices, submit a mixed
//! set of queries from several client threads, then read the metrics.
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use gpu_tree_traversals::service::{
    KdIndex, Query, QueryKind, QueryResult, Service, ServiceConfig, TreeIndex,
};
use gpu_tree_traversals::trees::SplitPolicy;
use gts_points::gen::{geocity_like, uniform};
use std::sync::Arc;

fn main() {
    let service = Service::start(ServiceConfig::default());

    // Two indices of different dimension; queries name them by id.
    let pts3 = uniform::<3>(2000, 7);
    let pts2 = geocity_like(2000, 8);
    let cube =
        service.register_index(
            Arc::new(KdIndex::build("cube", &pts3, 8, SplitPolicy::MedianCycle))
                as Arc<dyn TreeIndex>,
        );
    let cities = service.register_index(Arc::new(KdIndex::build(
        "cities",
        &pts2,
        8,
        SplitPolicy::MidpointWidest,
    )) as Arc<dyn TreeIndex>);

    // Four concurrent clients, each submitting a burst of queries near its
    // own corner of the data — the batcher coalesces across clients.
    std::thread::scope(|scope| {
        for client in 0..4 {
            let service = &service;
            let pts3 = &pts3;
            let pts2 = &pts2;
            scope.spawn(move || {
                for i in 0..64 {
                    let (query, label) = if (client + i) % 2 == 0 {
                        let p = pts3[(client * 97 + i * 13) % pts3.len()];
                        (
                            Query {
                                index: cube,
                                pos: p.0.to_vec(),
                                kind: QueryKind::Knn { k: 4 },
                            },
                            "cube knn",
                        )
                    } else {
                        let p = pts2[(client * 71 + i * 29) % pts2.len()];
                        (
                            Query {
                                index: cities,
                                pos: p.0.to_vec(),
                                kind: QueryKind::Pc { radius: 0.5 },
                            },
                            "cities pc",
                        )
                    };
                    let result = service.query(query).expect("query succeeds");
                    if i == 0 {
                        match result {
                            QueryResult::Knn { dist2, .. } => {
                                println!("client {client}: {label} → {} neighbors", dist2.len())
                            }
                            QueryResult::Pc { count } => {
                                println!("client {client}: {label} → {count} in radius")
                            }
                            QueryResult::Nn { dist2, id } => {
                                println!("client {client}: {label} → id {id} at d2 {dist2}")
                            }
                        }
                    }
                }
            });
        }
    });

    let snapshot = service.shutdown();
    println!(
        "\n{} queries in {} batches ({} lockstep / {} autoropes), p99 {:.2} ms",
        snapshot.completed,
        snapshot.batches,
        snapshot.lockstep_batches,
        snapshot.autoropes_batches,
        snapshot.latency_p99_ms
    );
    println!("\nmetrics JSON:\n{}", snapshot.to_json());
}
