//! Render a small image by casting camera rays through a BVH on the
//! simulated GPU — the workload the paper's introduction motivates
//! (“rays traverse the tree to determine which object(s) they intersect”).
//!
//! Camera rays are naturally coherent (sorted, in §4.4's terms), so the
//! render runs the lockstep traversal: one warp of 32 adjacent pixels
//! shares a rope stack, exactly the per-packet stack of the packet tracers
//! the paper cites.
//!
//! ```text
//! cargo run --release --example ray_tracing [width] [out.ppm]
//! ```

use gpu_tree_traversals::prelude::*;
use gts_apps::ray::{RayKernel, RayPoint};
use gts_runtime::gpu::{autoropes, lockstep};
use gts_trees::bvh::{Bvh, Triangle};

/// A deterministic little scene: a floor plane and a pyramid of boxes,
/// each box two triangles per face.
fn build_scene() -> Vec<Triangle> {
    let mut tris = Vec::new();
    let mut quad = |a: [f32; 3], b: [f32; 3], c: [f32; 3], d: [f32; 3]| {
        tris.push(Triangle {
            a: PointN(a),
            b: PointN(b),
            c: PointN(c),
        });
        tris.push(Triangle {
            a: PointN(a),
            b: PointN(c),
            c: PointN(d),
        });
    };
    // Floor.
    quad(
        [-8.0, -1.0, -8.0],
        [8.0, -1.0, -8.0],
        [8.0, -1.0, 8.0],
        [-8.0, -1.0, 8.0],
    );
    // A pyramid of axis-aligned cubes.
    let cube = |cx: f32,
                cy: f32,
                cz: f32,
                s: f32,
                quad: &mut dyn FnMut([f32; 3], [f32; 3], [f32; 3], [f32; 3])| {
        let (l, r) = (cx - s, cx + s);
        let (b, t) = (cy - s, cy + s);
        let (n, f) = (cz - s, cz + s);
        quad([l, b, n], [r, b, n], [r, t, n], [l, t, n]); // front
        quad([l, b, f], [l, t, f], [r, t, f], [r, b, f]); // back
        quad([l, b, n], [l, t, n], [l, t, f], [l, b, f]); // left
        quad([r, b, n], [r, b, f], [r, t, f], [r, t, n]); // right
        quad([l, t, n], [r, t, n], [r, t, f], [l, t, f]); // top
        quad([l, b, n], [l, b, f], [r, b, f], [r, b, n]); // bottom
    };
    for level in 0..4 {
        let y = -0.5 + level as f32 * 0.9;
        let half = 3 - level;
        for ix in -half..=half {
            for iz in -half..=half {
                cube(ix as f32 * 1.0, y, iz as f32 * 1.0, 0.42, &mut quad);
            }
        }
    }
    tris
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let width: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(160);
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "render.ppm".to_string());
    let height = width * 3 / 4;

    let tris = build_scene();
    let bvh = Bvh::build(&tris, 4);
    bvh.validate().expect("valid BVH");
    let kernel = RayKernel::new(&bvh);
    println!(
        "scene: {} triangles, BVH {} nodes (depth {}), image {width}×{height}",
        tris.len(),
        bvh.n_nodes(),
        bvh.depth()
    );

    // Primary rays, scanline order (coherent).
    let eye = PointN([4.5f32, 3.5, -9.0]);
    let look = PointN([0.0f32, 0.5, 0.0]);
    let fwd = PointN([look[0] - eye[0], look[1] - eye[1], look[2] - eye[2]]);
    let mut rays: Vec<RayPoint> = Vec::with_capacity(width * height);
    for y in 0..height {
        for x in 0..width {
            let u = (x as f32 / width as f32) * 2.0 - 1.0;
            let v = 1.0 - (y as f32 / height as f32) * 2.0;
            // Simple pinhole: right = +x-ish, up = +y; small-angle basis.
            let dir = PointN([fwd[0] + u * 6.0, fwd[1] + v * 4.5, fwd[2]]);
            rays.push(RayPoint::new(eye, dir));
        }
    }

    // Lockstep render on the simulated C2070.
    let cfg = GpuConfig::default();
    let report = lockstep::run(&kernel, &mut rays, &cfg);
    println!(
        "lockstep render: modeled {:.2} ms, {} warp-visits, coalescing {:.0}%",
        report.ms(),
        report.launch.counters.warp_node_visits,
        100.0 * report.launch.counters.coalescing_efficiency()
    );

    // Compare against the non-lockstep traversal (same image, different cost).
    let mut rays_n: Vec<RayPoint> = rays.iter().map(|r| RayPoint::new(r.orig, r.dir)).collect();
    let report_n = autoropes::run(&kernel, &mut rays_n, &cfg);
    println!("non-lockstep:    modeled {:.2} ms", report_n.ms());
    for (a, b) in rays.iter().zip(&rays_n) {
        assert_eq!(a.hit, b.hit, "variants must agree on every pixel");
    }

    // Shade by hit distance + triangle id hash; write a PPM.
    let mut ppm = format!("P3\n{width} {height}\n255\n");
    for r in &rays {
        let (rr, gg, bb) = if r.did_hit() {
            let shade = (1.0 / (1.0 + 0.06 * r.best_t)).clamp(0.0, 1.0);
            let hue = (r.hit.wrapping_mul(2654435761) >> 24) as f32 / 255.0;
            (
                (255.0 * shade * (0.5 + 0.5 * hue)) as u8,
                (255.0 * shade * 0.8) as u8,
                (255.0 * shade * (1.0 - 0.5 * hue)) as u8,
            )
        } else {
            (18, 22, 38) // sky
        };
        ppm.push_str(&format!("{rr} {gg} {bb}\n"));
    }
    std::fs::write(&out_path, ppm).expect("write image");
    let hits = rays.iter().filter(|r| r.did_hit()).count();
    println!(
        "wrote {out_path}: {hits}/{} pixels hit geometry",
        rays.len()
    );
}
