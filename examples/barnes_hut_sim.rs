//! Barnes-Hut n-body simulation over multiple timesteps (the paper runs
//! its BH inputs “for five timesteps”), using the lockstep traversal with
//! a shared-memory rope stack — the configuration the paper picks for BH
//! (§5.2).
//!
//! ```text
//! cargo run --release --example barnes_hut_sim [n_bodies] [timesteps]
//! ```

use gpu_tree_traversals::prelude::*;
use gts_apps::bh::{integrate, BhKernel, BhPoint};
use gts_points::gen::plummer;
use gts_points::sort::{apply_perm, morton_order};
use gts_runtime::gpu::lockstep;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let theta = 0.5;
    let dt = 0.0125;

    let mut bodies = plummer(n, 1);
    println!("Plummer model, {n} bodies, θ = {theta}, {steps} timesteps\n");

    let cfg = GpuConfig::default().with_shared_stack();
    let mut total_gpu_ms = 0.0;

    for step in 0..steps {
        // Rebuild the oct-tree each step (bodies moved).
        let pos: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
        let mass: Vec<f32> = bodies.iter().map(|b| b.mass).collect();
        let tree = Octree::build(&pos, &mass, 8);
        let kernel = BhKernel::new(&tree, theta, 0.05);

        // Sort bodies so warps traverse together (paper §4.4); the sort
        // permutation is applied to the bodies themselves so positions,
        // velocities and results stay aligned.
        let order = morton_order(&pos);
        bodies = apply_perm(&bodies, &order);

        // Force pass on the simulated GPU.
        let mut accs: Vec<BhPoint> = bodies.iter().map(|b| BhPoint::new(b.pos)).collect();
        let report = lockstep::run(&kernel, &mut accs, &cfg);
        total_gpu_ms += report.ms();

        // Leapfrog integration on the host.
        integrate(&mut bodies, &accs, dt);

        // Diagnostics: total kinetic energy and tree stats.
        let ke: f64 = bodies
            .iter()
            .map(|b| 0.5 * b.mass as f64 * b.vel.dist2(&PointN::zero()) as f64)
            .sum();
        println!(
            "step {step}: tree {:>6} nodes | modeled force pass {:>8.2} ms | avg nodes/warp {:>7.0} | KE {ke:.4}",
            tree.n_nodes(),
            report.ms(),
            report.per_warp_nodes.iter().sum::<u64>() as f64 / report.per_warp_nodes.len().max(1) as f64,
        );
    }
    println!("\ntotal modeled GPU force time over {steps} steps: {total_gpu_ms:.2} ms");
}
