//! Networked query service walkthrough: bind the binary-frame TCP
//! front-end on an ephemeral loopback port, then drive it with
//! `gts_net::Client` — a synchronous round-trip, a pipelined batch, and
//! an admission-control rejection.
//!
//! ```text
//! cargo run --release --example net_service
//! ```
//!
//! The same protocol serves `gts-harness serve --listen` and
//! `gts-harness loadgen --connect`; this example is the programmatic
//! client shape (DESIGN.md §12).

use gpu_tree_traversals::net::{Client, NetServer};
use gpu_tree_traversals::service::{
    KdIndex, Query, QueryKind, QueryResult, Service, ServiceConfig, TreeIndex,
};
use gpu_tree_traversals::trees::SplitPolicy;
use gts_points::gen::uniform;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let pts = uniform::<3>(4_096, 20130901);
    let service = Arc::new(Service::start(ServiceConfig {
        max_wait: Duration::from_millis(1),
        ..ServiceConfig::default()
    }));
    let id = service.register_index(Arc::new(KdIndex::build(
        "uniform3d",
        &pts,
        8,
        SplitPolicy::MedianCycle,
    )) as Arc<dyn TreeIndex>);

    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving on {addr} (protocol version negotiated per connection)");

    let mut client = Client::connect(addr).expect("connect");

    // One synchronous round-trip: a frame out, a frame back.
    let nn = client
        .query(Query {
            index: id,
            pos: vec![0.5, 0.5, 0.5],
            kind: QueryKind::Nn,
        })
        .expect("transport ok")
        .expect("query ok");
    if let QueryResult::Nn { dist2, id } = nn {
        println!("nn    : point {id} at dist² {dist2:.5}");
    }

    // A pipelined batch: 256 queries in ONE frame, answered by one
    // BatchResult frame once every ticket resolves. The client is free
    // to do other work (or send more frames) in between.
    let queries: Vec<Query> = pts
        .iter()
        .take(256)
        .map(|p| Query {
            index: id,
            pos: p.0.to_vec(),
            kind: QueryKind::Knn { k: 4 },
        })
        .collect();
    let base = client.send_batch(&queries).expect("send frame");
    let results = client.recv_batch(base).expect("recv frame");
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "batch : {ok}/{} queries answered in one frame round-trip",
        results.len()
    );

    // The socket path returns exactly what an in-process call returns.
    let direct = service
        .query(queries[0].clone())
        .expect("in-process query ok");
    assert_eq!(results[0].as_ref().expect("batch slot ok"), &direct);
    println!("check : socket result is bit-identical to in-process");

    // Errors arrive as structured frames, not dropped connections: an
    // unknown index is answered immediately.
    let err = client
        .query(Query {
            index: 99,
            pos: vec![0.0, 0.0, 0.0],
            kind: QueryKind::Nn,
        })
        .expect("transport ok")
        .expect_err("unknown index rejected");
    println!("error : {} — {}", err.code as u8, err.message);

    client.shutdown().expect("drain and close");
    server.shutdown();
    println!("done  : connection drained, server stopped");
}
