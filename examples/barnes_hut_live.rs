//! Stepped Barnes-Hut companion demo: instead of rebuilding the spatial
//! index from scratch every timestep (as `barnes_hut_sim` does for its
//! force oct-tree), the kNN density-estimation index is kept *live*
//! across steps — each step re-homes only the bodies that drifted out of
//! their neighborhood, as delete+insert delta pairs against a
//! [`MutableIndex`], and the merge lands as a new epoch while queries
//! keep answering exactly (including mid-window, before the merge).
//!
//! Odd steps deliberately query while the deltas are still pending, and
//! every step cross-checks a query sample against a from-scratch flat
//! rebuild — the same differential oracle the epoch test suite pins.
//!
//! ```text
//! cargo run --release --example barnes_hut_live [n_bodies] [timesteps]
//! ```

use gpu_tree_traversals::prelude::*;
use gts_apps::bh::integrate;
use gts_points::gen::plummer;
use gts_service::{
    Backend, ExecPolicy, KdIndex, MutableIndexBuilder, Mutation, OpKey, QueryResult, TreeIndex,
};

const K: usize = 8;
/// A body whose position moved more than this since it was indexed gets
/// re-homed; the rest ride their stale-but-close entry until they drift.
const REHOME_DIST2: f32 = 0.01 * 0.01;

fn knn_density(dist2: &[f32]) -> f64 {
    let r2 = dist2.last().copied().unwrap_or(f32::INFINITY) as f64;
    let vol = 4.0 / 3.0 * std::f64::consts::PI * r2.sqrt().powi(3);
    dist2.len() as f64 / vol.max(1e-12)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let dt = 0.0125;

    let mut bodies = plummer(n, 1);
    println!("Plummer model, {n} bodies, k = {K}, {steps} timesteps, live index\n");

    let pos0: Vec<PointN<3>> = bodies.iter().map(|b| b.pos).collect();
    // auto_merge(false): the step loop is the merge scheduler, so epochs
    // land exactly where the printout says they do.
    let idx = MutableIndexBuilder::new("bh-live", 8)
        .auto_merge(false)
        .build(&pos0);
    // Stable id of each body's *indexed* entry plus the position it was
    // indexed at (re-homing compares against this, not last step's pos).
    let mut indexed: Vec<(u32, PointN<3>)> = (0..n as u32).map(|i| (i, pos0[i as usize])).collect();

    let policy = ExecPolicy::forced(Backend::Lockstep);
    let cpu = ExecPolicy::forced(Backend::Cpu);

    for step in 0..steps {
        // Ballistic drift with a weak central pull stands in for the BH
        // force pass (see `barnes_hut_sim` for the real kernel).
        let accs: Vec<gts_apps::bh::BhPoint> = bodies
            .iter()
            .map(|b| {
                let mut a = gts_apps::bh::BhPoint::new(b.pos);
                let r2 = b.pos.dist2(&PointN::zero()).max(0.05);
                for d in 0..3 {
                    a.acc.0[d] = -b.pos.0[d] / (r2 * r2.sqrt());
                }
                a
            })
            .collect();
        integrate(&mut bodies, &accs, dt);

        // Re-home only the movers: a delete of the stale entry plus an
        // insert at the new position, one delta pair per drifted body.
        let mut muts = Vec::new();
        let mut movers = Vec::new();
        for (i, b) in bodies.iter().enumerate() {
            if b.pos.dist2(&indexed[i].1) > REHOME_DIST2 {
                muts.push(Mutation::Delete { id: indexed[i].0 });
                muts.push(Mutation::Insert {
                    pos: b.pos.0.to_vec(),
                });
                movers.push(i);
            }
        }
        let ack = idx.mutate(&muts).expect("index is live");
        assert_eq!(ack.rejected, 0);
        for (slot, &i) in movers.iter().enumerate() {
            indexed[i] = (ack.assigned[slot], bodies[i].pos);
        }

        // Odd steps query inside the pending-delta window; even steps
        // merge first so the answers come off the freshly built epoch.
        let merged = step % 2 == 0 && idx.merge_now();
        let sample: Vec<Vec<f32>> = bodies
            .iter()
            .step_by((n / 256).max(1))
            .map(|b| b.pos.0.to_vec())
            .collect();
        let out = idx.run_batch(OpKey::Knn(K), &sample, &policy);
        let mean_density: f64 = out
            .results
            .iter()
            .map(|r| match r {
                QueryResult::Knn { dist2, .. } => knn_density(dist2),
                _ => unreachable!(),
            })
            .sum::<f64>()
            / out.results.len() as f64;

        // Differential spot check: the live index must answer exactly
        // like a flat rebuild over the same live multiset.
        let live: Vec<PointN<3>> = idx.live().into_iter().map(|(_, p)| p).collect();
        let flat = KdIndex::build("flat", &live, 8, SplitPolicy::MedianCycle);
        let want = flat.run_batch(OpKey::Knn(K), &sample[..16.min(sample.len())], &cpu);
        let got = idx.run_batch(OpKey::Knn(K), &sample[..16.min(sample.len())], &cpu);
        let mismatches = want
            .results
            .iter()
            .zip(&got.results)
            .filter(|(w, g)| match (w, g) {
                (QueryResult::Knn { dist2: a, .. }, QueryResult::Knn { dist2: b, .. }) => a
                    .iter()
                    .zip(b.iter())
                    .any(|(x, y)| (x - y).abs() > 1e-5 * x.abs().max(1.0)),
                _ => true,
            })
            .count();
        assert_eq!(mismatches, 0, "live index diverged from flat rebuild");

        let stats = idx.stats();
        println!(
            "step {step}: re-homed {:>6} bodies | epoch {} ({}) | pending {:>6} | shards {} | ρ̄(kNN) {mean_density:>9.3} | oracle ok",
            movers.len(),
            stats.epoch,
            if merged { "merged" } else { "window" },
            stats.pending,
            stats.shards,
        );
    }

    idx.quiesce();
    let stats = idx.stats();
    println!(
        "\nquiesced: epoch {}, {} merges, {} mutations, {} live points, 0 pending",
        stats.epoch, stats.merges, stats.mutations, stats.live
    );
    assert_eq!(stats.pending, 0);
    assert_eq!(stats.live as usize, n);
}
