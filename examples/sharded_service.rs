//! Sharded vs flat indices, side by side in one service: the same
//! clustered dataset registered twice — once as a single kd-tree, once as
//! a Morton-partitioned [`ShardedIndex`] — answering the same queries.
//! The answers agree; the metrics show how many (query, shard) pairs the
//! sharded index's AABB bound pruned away.
//!
//! ```text
//! cargo run --release --example sharded_service [n_points] [n_shards]
//! ```

use gpu_tree_traversals::service::{
    KdIndex, Query, QueryKind, QueryResult, Service, ServiceConfig, ShardedIndex, TreeIndex,
};
use gpu_tree_traversals::trees::SplitPolicy;
use gts_points::gen::geocity_like;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let shards: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    // Clustered 2-d points — the shape shard pruning is built for: most
    // queries live deep inside one shard's bounding box, so the other
    // shards' lower bounds exceed the running best almost immediately.
    let pts = geocity_like(n, 20130901);

    let service = Service::start(ServiceConfig::default());
    let flat = service.register_index(Arc::new(KdIndex::build(
        "flat",
        &pts,
        8,
        SplitPolicy::MidpointWidest,
    )) as Arc<dyn TreeIndex>);
    let sharded_index =
        ShardedIndex::build("sharded", &pts, shards, 8, SplitPolicy::MidpointWidest);
    println!(
        "dataset: {n} clustered points; sharded index: {} shards of ~{} points",
        sharded_index.n_shards(),
        n / sharded_index.n_shards().max(1),
    );
    let sharded = service.register_index(Arc::new(sharded_index) as Arc<dyn TreeIndex>);

    // The same query stream against both indices; every answer must match.
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..512 {
        let anchor = pts[(i * 37) % pts.len()];
        let pos = vec![anchor.0[0] + 0.003, anchor.0[1] - 0.002];
        let kind = match i % 3 {
            0 => QueryKind::Nn,
            1 => QueryKind::Knn { k: 8 },
            _ => QueryKind::Pc { radius: 0.05 },
        };
        let a = service
            .query(Query {
                index: flat,
                pos: pos.clone(),
                kind,
            })
            .expect("flat query");
        let b = service
            .query(Query {
                index: sharded,
                pos,
                kind,
            })
            .expect("sharded query");
        total += 1;
        let same = match (&a, &b) {
            (QueryResult::Nn { dist2: x, .. }, QueryResult::Nn { dist2: y, .. }) => x == y,
            (QueryResult::Knn { dist2: x, .. }, QueryResult::Knn { dist2: y, .. }) => x == y,
            (QueryResult::Pc { count: x }, QueryResult::Pc { count: y }) => x == y,
            _ => false,
        };
        agree += same as usize;
        if i < 3 {
            println!("query {i}: flat {a:?} | sharded {b:?}");
        }
    }

    let snapshot = service.shutdown();
    println!("\n{agree}/{total} answers agree between flat and sharded");
    println!(
        "{} queries in {} batches; {} (query, shard) pairs pruned by shard AABBs",
        snapshot.completed, snapshot.batches, snapshot.shards_pruned
    );
    println!("\nmetrics JSON:\n{}", snapshot.to_json());
    assert_eq!(agree, total, "sharded index diverged from flat oracle");
}
