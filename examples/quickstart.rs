//! Quickstart: run one traversal benchmark (Point Correlation) under every
//! execution strategy the paper evaluates and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_tree_traversals::prelude::*;
use gts_apps::pc::{PcKernel, PcPoint};
use gts_runtime::cpu;
use gts_runtime::gpu::{autoropes, lockstep, recursive};

fn main() {
    // 1. Input: a clustered 7-d dataset (a stand-in for the paper's
    //    Covtype input) and the kd-tree over it.
    let n = 10_000;
    let data = gts_points::gen::covtype_like(n, 7);
    let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
    println!("kd-tree: {} nodes, depth {}", tree.n_nodes(), tree.depth());

    // 2. The kernel: count neighbors within a radius (paper Figure 4),
    //    sized relative to the dataset's extent.
    let bbox = Aabb::of_points(&data);
    let radius = 0.05 * bbox.lo.dist(&bbox.hi);
    let kernel = PcKernel::new(&tree, radius);
    let fresh = || data.iter().map(|&p| PcPoint::new(p)).collect::<Vec<_>>();

    // 3. CPU baseline — the recursive traversal of Figure 1, multithreaded.
    let mut cpu_pts = fresh();
    let cpu_r = cpu::run_parallel(&kernel, &mut cpu_pts, 4);
    println!(
        "CPU ({} threads):        {:>9.2} ms   avg nodes/point {:>8.1}",
        cpu_r.threads,
        cpu_r.ms(),
        cpu_r.stats.avg_nodes()
    );

    // 3b. Point-blocked CPU traversal (the Jo & Kulkarni locality
    //     transformation): identical results, better cache behavior.
    let mut blk_pts = fresh();
    let blk_r = gts_runtime::cpu_blocked::run_blocked(&kernel, &mut blk_pts, 128);
    println!(
        "CPU point-blocked:       {:>9.2} ms   avg nodes/point {:>8.1}",
        blk_r.ms(),
        blk_r.stats.avg_nodes()
    );

    // 4. GPU strategies on the simulated Tesla C2070.
    let cfg = GpuConfig::default();

    let mut pts = fresh();
    let rec = recursive::run(&kernel, &mut pts, &cfg, false);
    println!(
        "GPU naive recursion:     {:>9.2} ms   avg nodes/point {:>8.1}   {} calls",
        rec.ms(),
        rec.stats.avg_nodes(),
        rec.launch.counters.calls
    );

    let mut ar_pts = fresh();
    let ar = autoropes::run(&kernel, &mut ar_pts, &cfg);
    println!(
        "GPU autoropes (N):       {:>9.2} ms   avg nodes/point {:>8.1}   coalescing {:.0}%",
        ar.ms(),
        ar.stats.avg_nodes(),
        100.0 * ar.launch.counters.coalescing_efficiency()
    );

    let mut ls_pts = fresh();
    let ls = lockstep::run(&kernel, &mut ls_pts, &cfg);
    println!(
        "GPU lockstep (L):        {:>9.2} ms   avg nodes/point {:>8.1}   coalescing {:.0}%",
        ls.ms(),
        ls.stats.avg_nodes(),
        100.0 * ls.launch.counters.coalescing_efficiency()
    );

    // 5. Every strategy computes exactly the same counts.
    for i in 0..n {
        assert_eq!(cpu_pts[i].count, blk_pts[i].count);
        assert_eq!(cpu_pts[i].count, ar_pts[i].count);
        assert_eq!(cpu_pts[i].count, ls_pts[i].count);
    }
    println!("\nall strategies agree on all {n} correlation counts ✓");
    println!(
        "lockstep visited {:.1}× the nodes but made {:.1}× fewer memory transactions",
        ls.stats.avg_nodes() / ar.stats.avg_nodes(),
        ar.launch.counters.global_transactions as f64
            / ls.launch.counters.global_transactions as f64
    );
}
