//! The traversal compiler end to end: write a kernel as a reduced CFG,
//! analyze its call sets, check pseudo-tail-recursion, classify it,
//! transform it, and execute the transformed program — both through the
//! IR interpreters and on the simulated GPU via the runtime adapter.
//!
//! ```text
//! cargo run --release --example compiler_pipeline
//! ```

use gpu_tree_traversals::prelude::*;
use gts_ir::adapter::IrKernel;
use gts_ir::analysis::{branch_map, call_sets, check_pseudo_tail_recursive, classify};
use gts_ir::examples_ir::{bh_ir, figure4_pc, figure5_guided, non_ptr_kernel, PcOps, PcState};
use gts_ir::interp::{run_autoropes, run_lockstep, run_recursive};
use gts_ir::transform::transform;
use gts_runtime::gpu::lockstep;
use gts_trees::layout::NodeBytes;

fn analyze(name: &str, ir: &gts_ir::KernelIr, annotated: bool) {
    println!("── {name} ──");
    match check_pseudo_tail_recursive(ir) {
        Ok(()) => println!("  pseudo-tail-recursive: yes"),
        Err(v) => {
            println!(
                "  pseudo-tail-recursive: NO — block {} stmt {}: {}",
                v.block, v.stmt, v.reason
            );
            println!("  (the paper's §3.2 restructuring pass would push this work into a child)\n");
            return;
        }
    }
    let sets = call_sets(ir).expect("acyclic CFG");
    println!("  static call sets: {}", sets.len());
    for (i, s) in sets.iter().enumerate() {
        let desc: Vec<String> = s.iter().map(|c| format!("{:?}", c.child)).collect();
        println!("    set {i}: [{}]", desc.join(", "));
    }
    println!("  classification: {:?}", classify(ir).expect("classify"));
    let bm = branch_map(ir, &sets).expect("branch map");
    let guiding: Vec<usize> = (0..ir.blocks.len()).filter(|&b| bm.is_guiding(b)).collect();
    println!("  guiding branches: {guiding:?}");
    let prog = transform(ir, annotated).expect("transform");
    println!(
        "  transformed: lockstep-eligible = {} (annotation = {})\n",
        prog.lockstep_eligible, prog.annotated_equivalent
    );
}

fn main() {
    println!("=== Phase 1: static analysis (paper §3.2.1) ===\n");
    analyze(
        "Figure 4 — Point Correlation (unguided)",
        &figure4_pc(),
        false,
    );
    analyze("Figure 5 — guided, two call sets", &figure5_guided(), true);
    analyze("Figure 9a — Barnes-Hut, loop unrolled", &bh_ir(), false);
    analyze("post-order kernel (rejected)", &non_ptr_kernel(), false);

    println!("=== Phase 1b: the transformation's output, as code ===\n");
    let pc_prog = transform(&figure4_pc(), false).expect("PC transforms");
    println!("{}", gts_ir::pretty::recursive(&figure4_pc()));
    println!("{}", gts_ir::pretty::autoropes(&pc_prog));
    println!("{}", gts_ir::pretty::lockstep(&pc_prog));

    println!("=== Phase 2: the §3.3 equivalence, executed ===\n");
    let data = gts_points::gen::uniform::<3>(2_000, 11);
    let tree = KdTree::build(&data, 8, SplitPolicy::MedianCycle);
    let radius = 0.3f32;
    let ops = PcOps {
        tree: &tree,
        radius2: radius * radius,
    };
    let prog = transform(&figure4_pc(), false).expect("PC transforms");

    let q = data[17];
    let mut p_rec = PcState { pos: q, count: 0 };
    let mut p_rope = PcState { pos: q, count: 0 };
    let rec = run_recursive(&prog.ir, &ops, &mut p_rec, &[]);
    let rope = run_autoropes(&prog, &ops, &mut p_rope, &[]);
    assert_eq!(rec, rope);
    println!(
        "recursive and autoropes traces identical: {} node visits, count = {}",
        rec.visits.len(),
        p_rec.count
    );

    let mut warp: Vec<PcState<3>> = data
        .iter()
        .take(32)
        .map(|&p| PcState { pos: p, count: 0 })
        .collect();
    let ls = run_lockstep(&prog, &ops, &mut warp, &[]);
    println!(
        "lockstep warp: union traversal {} nodes; longest lane {} nodes",
        ls.warp_visits.len(),
        ls.lane_visits.iter().map(Vec::len).max().unwrap_or(0)
    );

    println!("\n=== Phase 3: the compiled kernel on the simulated GPU ===\n");
    let kernel: IrKernel<_, 1, false, 0> = IrKernel::new(
        prog,
        PcOps {
            tree: &tree,
            radius2: radius * radius,
        },
        NodeBytes::kd(3),
        [],
    );
    let mut pts: Vec<PcState<3>> = data.iter().map(|&p| PcState { pos: p, count: 0 }).collect();
    let report = lockstep::run(&kernel, &mut pts, &GpuConfig::default());
    println!(
        "compiled PC kernel, lockstep on simulated C2070: {:.3} ms, {} global transactions, coalescing {:.0}%",
        report.ms(),
        report.launch.counters.global_transactions,
        100.0 * report.launch.counters.coalescing_efficiency()
    );
    // Spot-check against brute force.
    let expect = gts_apps::oracle::pc_count(&data, &data[0], radius);
    assert_eq!(pts[0].count, expect);
    println!("result verified against the brute-force oracle ✓");
}
