//! Offline stand-in for `serde_json`, over the stub `serde`'s [`Value`].
//!
//! Provides `to_string`, `to_string_pretty`, `to_value`, `from_str`, and
//! `from_value`. Numbers print via Rust's shortest-round-trip float
//! formatting, so `f64` values survive a text round-trip to full
//! precision (integers print as integers).

pub use serde::Value;
use serde::{Deserialize, Number, Serialize};

/// JSON error (message + byte offset for parse errors).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string(), 0)
    }
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(T::from_value(&v)?)
}

/// Deserialize from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ---- printer ---------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                write_value(&items[i], out, indent, d);
            });
        }
        Value::Object(fields) => {
            write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                write_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&fields[i].1, out, indent, d);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                // Match serde_json's "1.0" style for integral floats.
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        // serde_json rejects non-finite floats; print null like its
        // permissive consumers expect.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new("unexpected character", self.pos)),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("short \\u escape", self.pos));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // printer; reject them on input.
                            s.push(char::from_u32(cp).ok_or_else(|| {
                                Error::new("unsupported surrogate escape", self.pos)
                            })?);
                        }
                        _ => return Err(Error::new("unknown escape", self.pos - 1)),
                    }
                }
                _ => return Err(Error::new("unterminated string", self.pos)),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number", start))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::new("bad number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi\n").unwrap(), "\"hi\\n\"");
        let x: f64 = from_str("0.1").unwrap();
        assert_eq!(x, 0.1);
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u32> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn float_precision_survives_roundtrip() {
        for &f in &[0.1f64, 1.0 / 3.0, 6.02214076e23, -1e-300, 123456789.123456] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f, back, "{s}");
        }
    }

    #[test]
    fn nested_values_roundtrip() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Number(Number::U64(1)), Value::Null]),
            ),
            ("b".into(), Value::String("x \"y\" z".into())),
            (
                "c".into(),
                Value::Object(vec![("d".into(), Value::Bool(false))]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<bool>("\"no\"").is_err());
    }

    #[test]
    fn tuples_as_arrays() {
        let t = (3usize, 2.5f64);
        let s = to_string(&t).unwrap();
        assert_eq!(s, "[3,2.5]");
        let back: (usize, f64) = from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}
