//! Offline stand-in for `serde`.
//!
//! Instead of upstream serde's serializer/visitor machinery, this stub
//! round-trips through an owned JSON-shaped [`Value`] tree:
//!
//! * [`Serialize::to_value`] turns a Rust value into a [`Value`];
//! * [`Deserialize::from_value`] rebuilds a Rust value from a [`Value`];
//! * the sibling `serde_json` stub prints and parses [`Value`] as JSON
//!   text.
//!
//! The derive macros (re-exported from the stub `serde_derive`) cover
//! named-field structs, newtype structs, and unit-variant enums — the
//! shapes this workspace serializes. Deserialization of struct fields is
//! by name, so field order in the JSON does not matter, same as upstream.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer-ness where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values).
    I64(i64),
    /// Float.
    F64(f64),
}

impl Number {
    /// Lossy conversion to f64.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Conversion to u64 when exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Conversion to i64 when exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// New error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: typed lookup of an object field.
/// A missing field is an error, matching upstream serde's default.
pub fn from_field<T: Deserialize>(obj: &Value, name: &str) -> Result<T, Error> {
    match obj.get(name) {
        Some(v) => T::from_value(v).map_err(|e| Error(format!("field `{name}`: {e}"))),
        None => Err(Error(format!("missing field `{name}`"))),
    }
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::new("integer out of range")),
                    _ => Err(Error::new("expected unsigned integer")),
                }
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! sint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::new("integer out of range")),
                    _ => Err(Error::new("expected signed integer")),
                }
            }
        }
    )*};
}
sint_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(Error::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::new("expected 3-element array")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::new("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
