//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! The keystream is a genuine ChaCha construction with 8 rounds (RFC 8439
//! block function, reduced rounds), keyed from the 32-byte seed with a
//! zero nonce and 64-bit block counter. It is deterministic and
//! statistically strong; it is **not** guaranteed word-for-word identical
//! to upstream `rand_chacha` (this workspace only relies on
//! determinism-given-seed).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded, deterministic.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 0..8.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero.
        let initial = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (w, init) in state.iter_mut().zip(initial) {
            *w = w.wrapping_add(init);
        }
        self.block = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u32> = (0..100).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..100).map(|_| b.next_u32()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn blocks_change_with_counter() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let x: f32 = r.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        // Mean of many uniform draws is near 0.5.
        let mean: f64 = (0..4000).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
