//! Offline stand-in for `criterion`.
//!
//! Real criterion measures; this stub only *executes*: every registered
//! benchmark body runs exactly once and its wall time is printed. That
//! keeps `cargo bench` (and `cargo build --benches`) compiling and useful
//! as a smoke test in an environment with no crates.io access, without
//! pretending to produce statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Disable plot generation (no-op: the stub never plots).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Set the measurement sample count (no-op: the stub runs once).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Register a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&id.to_string(), |b| f(b));
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the measurement sample count (no-op: the stub runs once).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time budget (no-op: the stub runs once).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Register a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_once(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Register a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_once(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_once(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { elapsed: None };
    let start = Instant::now();
    f(&mut b);
    let wall = b.elapsed.unwrap_or_else(|| start.elapsed());
    println!(
        "bench {label}: {:.3} ms (single run, stub)",
        wall.as_secs_f64() * 1e3
    );
}

/// Handed to each benchmark body; runs the routine exactly once.
pub struct Bencher {
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Run the routine once and record its wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = Some(start.elapsed());
    }

    /// Run the custom-timed routine with `iters = 1`.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = Some(routine(1));
    }
}

/// Identifier helper mirroring criterion's `BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Id from a parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner, optionally with a
/// configured `Criterion` (the `config = ...` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                Duration::from_micros(5)
            })
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    criterion_group! {
        name = configured;
        config = Criterion::default().without_plots();
        targets = sample_bench
    }

    #[test]
    fn groups_run() {
        benches();
        configured();
    }

    #[test]
    fn bencher_records_custom_time() {
        let mut b = Bencher { elapsed: None };
        b.iter_custom(|_| Duration::from_millis(3));
        assert_eq!(b.elapsed, Some(Duration::from_millis(3)));
    }
}
