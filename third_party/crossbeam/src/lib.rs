//! Offline stand-in for the `crossbeam` crate.
//!
//! Two pieces are provided, matching what this workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads, implemented over
//!   [`std::thread::scope`]. Handles joined inside the closure behave
//!   identically; the scope returns `Ok(R)` on success.
//! * [`channel`] — multi-producer multi-consumer channels (bounded with
//!   blocking backpressure, and unbounded), implemented with
//!   `Mutex<VecDeque>` + two condvars. These back the `gts-service`
//!   submission and dispatch queues.

pub mod channel;

/// Scoped threads.
pub mod thread {
    use std::thread as stdthread;

    /// A scope handle; `spawn` borrows from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// itself (for nested spawns), like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope; all threads spawned within are joined before it
    /// returns. Returns `Ok` with the closure's value (panics inside
    /// unjoined threads propagate as panics, which every caller in this
    /// workspace treats as fatal anyway).
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let mut out = Vec::new();
        super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            for h in handles {
                out.push(h.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let r = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
