//! MPMC channels: `bounded` (blocking backpressure) and `unbounded`.
//!
//! Semantics follow crossbeam-channel where this workspace depends on
//! them:
//!
//! * senders and receivers are cloneable and usable from many threads;
//! * `send` on a full bounded channel blocks until space frees up;
//! * `send` fails with [`SendError`] once every receiver is dropped;
//! * `recv` blocks until a message arrives and fails with [`RecvError`]
//!   once the channel is empty **and** every sender is dropped;
//! * `recv_timeout` adds a deadline — the batcher's flush tick rides on
//!   this.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct State<T> {
    buf: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

/// Error on `send`: all receivers dropped. Carries the unsent message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error on `recv`: channel empty and all senders dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error on `try_recv`.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error on `recv_timeout`.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Sending half. Clone freely.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half. Clone freely (MPMC: each message goes to one receiver).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Channel with capacity `cap` (> 0); `send` blocks while full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap > 0,
        "bounded(0) rendezvous channels are not supported by this stub"
    );
    new_channel(Some(cap))
}

/// Channel without capacity bound; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(State {
            buf: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Blocking send; fails only when every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = st.cap.is_some_and(|c| st.buf.len() >= c);
            if !full {
                st.buf.push_back(msg);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self.inner.not_full.wait(st).expect("channel poisoned");
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().expect("channel poisoned").buf.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; fails once empty with no senders left.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.not_empty.wait(st).expect("channel poisoned");
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.queue.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = st.buf.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, res) = self
                .inner
                .not_empty
                .wait_timeout(st, deadline - now)
                .expect("channel poisoned");
            st = guard;
            if res.timed_out() && st.buf.is_empty() {
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.queue.lock().expect("channel poisoned");
        if let Some(msg) = st.buf.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().expect("channel poisoned").buf.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().expect("channel poisoned").senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.queue.lock().expect("channel poisoned").receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.queue.lock().expect("channel poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.queue.lock().expect("channel poisoned");
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            // This blocks until the main thread drains one slot.
            tx.send(3).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn mpmc_disjoint_delivery() {
        let (tx, rx) = unbounded::<u64>();
        let n: u64 = 1000;
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, n * (n - 1) / 2);
    }
}
