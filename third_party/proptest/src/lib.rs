//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))]
//!   #[test] fn name(x in lo..hi, ...) { ... } }` — each test function
//!   runs its body for `cases` deterministic samples drawn from the range
//!   strategies;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` — forwarded to
//!   the std assert macros (a failure panics immediately; there is no
//!   shrinking, but the failing inputs are printed first).
//!
//! Sampling is seeded from the test's module path and name, so runs are
//! reproducible and independent of execution order. `proptest-regressions`
//! files are ignored.

use rand::{Rng, SplitMix64};

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (upstream defaults to 256; the stub trades a smaller
    /// default for faster offline suites — heavy tests in this repo set
    /// their own count explicitly anyway).
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case sampler.
#[derive(Debug, Clone)]
pub struct SampleRng(SplitMix64);

impl SampleRng {
    /// RNG for case `case` of the test uniquely named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        SampleRng(SplitMix64(h ^ ((case as u64) << 32) ^ 0x9e37_79b9))
    }
}

impl rand::RngCore for SampleRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value source for one macro binding.
pub trait Strategy {
    /// Produced value type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut SampleRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SampleRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A constant strategy (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SampleRng) -> T {
        self.0.clone()
    }
}

/// Property-test entry macro. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` in the `proptest!` body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::SampleRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!("case {} of ", stringify!($name), ": ",
                            $(stringify!($arg), " = {:?} ",)+),
                    __case, $(&$arg),+
                );
                let __guard = $crate::__PanicContext::new(__inputs);
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ( ($cfg:expr) ) => {};
}

/// Prints the sampled inputs if the test body panics (poor man's failure
/// report — there is no shrinking).
#[doc(hidden)]
pub struct __PanicContext {
    inputs: String,
    armed: bool,
}

impl __PanicContext {
    #[doc(hidden)]
    pub fn new(inputs: String) -> Self {
        __PanicContext {
            inputs,
            armed: true,
        }
    }

    #[doc(hidden)]
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for __PanicContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("proptest stub failing inputs: {}", self.inputs);
        }
    }
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption fails. Upstream resamples;
/// the stub just returns from the case body, which is sound for the
/// filters this workspace uses.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        SampleRng, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(n in 3usize..10, f in -1.0f32..1.0, s in 0u64..5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(s < 5);
        }

        #[test]
        fn multiple_fns_in_one_block(a in 0i32..100, b in 0i32..100) {
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(x in 0u32..1000) {
            // Body runs; count is implicitly verified by coverage of the
            // deterministic sampler below.
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = SampleRng::for_case("t", 3);
        let mut b = SampleRng::for_case("t", 3);
        let x: u64 = Strategy::sample(&(0u64..1000), &mut a);
        let y: u64 = Strategy::sample(&(0u64..1000), &mut b);
        assert_eq!(x, y);
        let mut c = SampleRng::for_case("t", 4);
        let z: u64 = Strategy::sample(&(0u64..1000), &mut c);
        // Different case index nearly always differs.
        assert!(x != z || x < 1000);
    }
}
