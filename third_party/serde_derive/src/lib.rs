//! Offline stand-in for `serde_derive`.
//!
//! Supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields (no generics),
//! * tuple structs (newtype `T(U)` serialized transparently; longer tuples
//!   as arrays),
//! * enums whose variants are all unit variants (serialized as strings).
//!
//! The generated impls target the stub `serde` crate's value-tree traits
//! (`Serialize::to_value` / `Deserialize::from_value`), not upstream
//! serde's visitor machinery. Anything outside the supported shapes
//! produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the stub `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    generate(input, Mode::Serialize)
}

/// Derive the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    generate(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// struct Name { a, b, c }
    NamedStruct { name: String, fields: Vec<String> },
    /// struct Name(T, U); — field count only.
    TupleStruct { name: String, arity: usize },
    /// enum Name { A, B } — unit variants only.
    UnitEnum { name: String, variants: Vec<String> },
}

fn generate(input: TokenStream, mode: Mode) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&shape, mode) {
        (Shape::NamedStruct { name, fields }, Mode::Serialize) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         let mut __fields = ::std::vec::Vec::new();\
                         {pushes}\
                         ::serde::Value::Object(__fields)\
                     }}\
                 }}"
            )
        }
        (Shape::NamedStruct { name, fields }, Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(__v, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         ::std::result::Result::Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        (Shape::TupleStruct { name, arity: 1 }, Mode::Serialize) => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn to_value(&self) -> ::serde::Value {{\
                     ::serde::Serialize::to_value(&self.0)\
                 }}\
             }}"
        ),
        (Shape::TupleStruct { name, arity: 1 }, Mode::Deserialize) => format!(
            "impl ::serde::Deserialize for {name} {{\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_value(__v)?))\
                 }}\
             }}"
        ),
        (Shape::TupleStruct { .. }, _) => {
            return "compile_error!(\"serde stub: tuple structs with more than one \
                    field are not supported\");"
                .parse()
                .unwrap();
        }
        (Shape::UnitEnum { name, variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\
                     }}\
                 }}"
            )
        }
        (Shape::UnitEnum { name, variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         match __v {{\
                             ::serde::Value::String(__s) => match __s.as_str() {{\
                                 {arms}\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::Error::new(format!(\
                                         \"unknown {name} variant {{__other}}\"))),\
                             }},\
                             _ => ::std::result::Result::Err(::serde::Error::new(\
                                 \"expected string for enum {name}\".to_string())),\
                         }}\
                     }}\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Token iterator with attributes (`#[...]` pairs) skipped.
fn strip(tokens: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut iter = tokens.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Drop the following bracket group (the attribute body).
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        iter.next();
                        continue;
                    }
                }
                out.push(tt);
            }
            _ => out.push(tt),
        }
    }
    out
}

fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens = strip(input);
    let mut i = 0;
    // Skip visibility: `pub`, optionally followed by `(...)`.
    let is_ident =
        |t: &TokenTree, s: &str| matches!(t, TokenTree::Ident(id) if id.to_string() == s);
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde stub: expected struct or enum, got {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde stub: expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("serde stub: generic types are not supported".to_string());
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
        {
            let arity = split_top_level(strip(g.stream())).len();
            return Ok(Shape::TupleStruct { name, arity });
        }
        other => return Err(format!("serde stub: unsupported item body {other:?}")),
    };
    let parts = split_top_level(strip(body));
    if kind == "struct" {
        let mut fields = Vec::new();
        for part in &parts {
            let mut j = 0;
            if j < part.len() && is_ident(&part[j], "pub") {
                j += 1;
                if let Some(TokenTree::Group(g)) = part.get(j) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        j += 1;
                    }
                }
            }
            match part.get(j) {
                Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                other => return Err(format!("serde stub: unsupported field {other:?}")),
            }
        }
        Ok(Shape::NamedStruct { name, fields })
    } else {
        let mut variants = Vec::new();
        for part in &parts {
            match (part.first(), part.len()) {
                (Some(TokenTree::Ident(id)), 1) => variants.push(id.to_string()),
                _ => return Err("serde stub: only unit enum variants are supported".to_string()),
            }
        }
        Ok(Shape::UnitEnum { name, variants })
    }
}

/// Split a stripped token list on top-level commas, tracking `<...>` depth
/// (delimiter groups are already atomic in `TokenTree`). Empty trailing
/// segments are dropped.
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        parts.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    parts
}
