//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates-io access, so this workspace ships
//! a minimal, deterministic implementation of exactly the API surface the
//! repo uses: [`RngCore`], [`SeedableRng`] (with `seed_from_u64`), the
//! [`Rng::gen_range`] extension over half-open ranges, and
//! [`seq::SliceRandom::shuffle`]. Streams are *not* bit-compatible with
//! upstream `rand`; every consumer in this repo only relies on
//! determinism-given-seed, never on specific values.

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits (default: two `next_u32` calls).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, including the convenience `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (same spirit
    /// as upstream rand; not bit-identical).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the test fallback RNG.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next(self)
    }
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 24 (f32) / 53 (f64) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                let v = self.start + unit * (self.end - self.start);
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_range_impl!(f32 => 24, f64 => 53);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rr>(&mut self, range: Rr) -> T
    where
        Rr: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Random bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported names.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn float_sampling_covers_span() {
        let mut rng = SplitMix64(9);
        let (mut lo_half, mut hi_half) = (0, 0);
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(0.0..1.0);
            if f < 0.5 {
                lo_half += 1;
            } else {
                hi_half += 1;
            }
        }
        assert!(lo_half > 300 && hi_half > 300, "{lo_half}/{hi_half}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SplitMix64(1);
        v.shuffle(&mut rng);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
